(* Campaign layer: one recorded master, N independent slave passes —
   durable, deadline-bounded, retried and quarantined.

   The per-source attribution follow-up (Sec. 3) and the
   mutation-strategy study (Sec. 8.3) both re-run a dual execution per
   source/strategy, yet the master half is byte-identical across those
   runs: [Engine.master_pass] never reads the slave-only configuration
   fields (sources, strategy, slave_seed, record_trace), and a
   [master_out] is a frozen, replayable outcome log.  A campaign
   therefore pays ONE master pass and fans the K slave passes out —
   sequentially, or across an OCaml 5 domain pool with a bounded work
   queue.

   Determinism: each slave pass builds its own machine, OS and cursors
   from immutable inputs (the program, the world description, the frozen
   master log) and the VM scheduler is deterministically seeded, so a
   parallel campaign is byte-identical to a sequential one (asserted by
   the property suite).

   Durability: [?journal] persists a manifest (configuration
   fingerprint + task list) and appends each outcome as the calling
   domain collects it, through [Ldx_store.Store]'s checksummed
   append-only format; [resume] replays journaled outcomes verbatim and
   runs only the tasks that never made it to disk.  Outcome payloads
   are [Marshal]ed [Engine.result]s (plain data, no closures), guarded
   by the manifest fingerprint: a journal only ever replays into the
   exact campaign shape that wrote it. *)

module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Obs = Ldx_obs
module Store = Ldx_store.Store

(* Slave-side parameters only, by construction: anything expressible as
   a [slave_params] is sound to run against a shared master recording. *)
type slave_params = {
  label : string;
  sources : Engine.source_spec list;
  strategy : Mutation.strategy;
  slave_seed : int;
  record_trace : bool;
  check_final_state : bool;
  sched : Engine.Sched.spec option;
}

let params_of_config ?(label = "base") (c : Engine.config) : slave_params =
  { label;
    sources = c.Engine.sources;
    strategy = c.Engine.strategy;
    slave_seed = c.Engine.slave_seed;
    record_trace = c.Engine.record_trace;
    check_final_state = c.Engine.check_final_state;
    sched = c.Engine.slave_sched }

let apply (base : Engine.config) (p : slave_params) : Engine.config =
  { base with
    Engine.sources = p.sources;
    strategy = p.strategy;
    slave_seed = p.slave_seed;
    record_trace = p.record_trace;
    check_final_state = p.check_final_state;
    slave_sched = p.sched }

let of_sources (c : Engine.config) : slave_params list =
  List.mapi
    (fun i spec ->
       { (params_of_config c) with
         label = Printf.sprintf "source#%d" i;
         sources = [ spec ] })
    c.Engine.sources

let of_strategies (c : Engine.config)
    (strategies : (string * Mutation.strategy) list) : slave_params list =
  List.map
    (fun (label, strategy) -> { (params_of_config c) with label; strategy })
    strategies

let of_seeds (c : Engine.config) (seeds : int list) : slave_params list =
  List.map
    (fun s ->
       { (params_of_config c) with
         label = Printf.sprintf "seed=%d" s;
         slave_seed = s })
    seeds

let of_scheds (c : Engine.config)
    (scheds : (string * Engine.Sched.spec) list) : slave_params list =
  List.map
    (fun (label, spec) -> { (params_of_config c) with label; sched = Some spec })
    scheds

(* A task's fate.  A raising slave pass is RECORDED, never fatal: one
   bad task must not take down the fleet (nor, in the parallel path,
   lose every sibling's result).  Fuel exhaustion gets its own arm —
   the result is still meaningful (both sides' partial summaries are
   there) but its verdict must not be trusted like a completed run's.
   [Timed_out] is the same fuel trap under a [?deadline] tighter than
   the configured budget; [Quarantined] parks a task that crashed on
   every attempt. *)
type status =
  | Ok of Engine.result
  | Crashed of { exn : string; backtrace : string }
  | Fuel_exhausted of Engine.result
  | Timed_out of Engine.result
  | Quarantined of { exn : string; backtrace : string }

type outcome = {
  params : slave_params;
  status : status;
  attempts : int;
}

let status_class = function
  | Ok _ -> "ok"
  | Crashed _ -> "crashed"
  | Fuel_exhausted _ -> "fuel-exhausted"
  | Timed_out _ -> "timed-out"
  | Quarantined _ -> "quarantined"

let result_of = function
  | Ok r | Fuel_exhausted r | Timed_out r -> Some r
  | Crashed _ | Quarantined _ -> None

let result_exn (o : outcome) : Engine.result =
  match o.status with
  | Ok r | Fuel_exhausted r | Timed_out r -> r
  | Crashed { exn; _ } ->
    invalid_arg (Printf.sprintf "campaign task %s crashed: %s" o.params.label exn)
  | Quarantined { exn; _ } ->
    invalid_arg
      (Printf.sprintf "campaign task %s quarantined: %s" o.params.label exn)

(* Bounded retries for crashed/fuel-exhausted/timed-out tasks.  Retry
   [k] (1-based) re-runs with [slave_seed + seed_jitter * stride k]:
   linear when [backoff <= 1] (bit-identical to the historical policy),
   else [backoff^(k-1)] — exponential backoff in seed space.  A
   transient failure (schedule-dependent deadlock, fuel blow-up under
   an unlucky interleaving) clears under a perturbed schedule, a
   deterministic one reproduces — which is exactly the signal the
   attempt count carries, and what [quarantine] acts on. *)
type retry_policy = {
  max_retries : int;
  seed_jitter : int;
  backoff : int;
  fuel_budget : int option;
  quarantine : bool;
}

let no_retries =
  { max_retries = 0; seed_jitter = 1; backoff = 1; fuel_budget = None;
    quarantine = false }

type runner =
  ?obs:Obs.Sink.t ->
  Engine.config -> Ir.program -> World.t -> Engine.master_out -> Engine.result

let default_runner : runner =
  fun ?obs cfg prog world mo -> Engine.run_with_master ?obs cfg prog world mo

(* ---------- durable journal encoding ---------- *)

(* Outcome payloads are hex so they survive the store's line format
   unscathed; "-" stands for the empty string (hex of "" would vanish
   between the separators). *)
let to_hex (s : string) : string =
  if s = "" then "-"
  else begin
    let b = Buffer.create (2 * String.length s) in
    String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
    Buffer.contents b
  end

let of_hex (s : string) : string option =
  if s = "-" then Some ""
  else if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length s / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

(* [Engine.result] is plain data (records, variants, strings, ints —
   audited: no closures anywhere under it), so [Marshal] round-trips it
   exactly; replaying a journaled outcome is verbatim, which is what
   makes interrupted-then-resumed renders byte-identical. *)
let encode_status (s : status) (attempts : int) : string =
  let res tag (r : Engine.result) =
    Printf.sprintf "%s %d %s" tag attempts (to_hex (Marshal.to_string r []))
  in
  let dead tag exn backtrace =
    Printf.sprintf "%s %d %s %s" tag attempts (to_hex exn) (to_hex backtrace)
  in
  match s with
  | Ok r -> res "ok" r
  | Fuel_exhausted r -> res "fuel" r
  | Timed_out r -> res "timeout" r
  | Crashed { exn; backtrace } -> dead "crash" exn backtrace
  | Quarantined { exn; backtrace } -> dead "quarantine" exn backtrace

let decode_status (payload : string) : (status * int) option =
  let result h k =
    match of_hex h with
    | None -> None
    | Some m ->
      (match (Marshal.from_string m 0 : Engine.result) with
       | r -> Some (k r)
       | exception _ -> None)
  in
  match String.split_on_char ' ' payload with
  | [ tag; a; h ] -> (
      match int_of_string_opt a with
      | None -> None
      | Some attempts -> (
        match tag with
        | "ok" -> result h (fun r -> (Ok r, attempts))
        | "fuel" -> result h (fun r -> (Fuel_exhausted r, attempts))
        | "timeout" -> result h (fun r -> (Timed_out r, attempts))
        | _ -> None))
  | [ tag; a; e; b ] -> (
      match (int_of_string_opt a, of_hex e, of_hex b) with
      | Some attempts, Some exn, Some backtrace -> (
        match tag with
        | "crash" -> Some (Crashed { exn; backtrace }, attempts)
        | "quarantine" -> Some (Quarantined { exn; backtrace }, attempts)
        | _ -> None)
      | _ -> None)
  | _ -> None

(* the service worker protocol moves these across process boundaries *)
let encode_outcome = encode_status
let decode_outcome = decode_status

(* The configuration fingerprint a journal stores and [resume] checks.
   Slave params, faults and scheduler specs are plain data (audited, as
   for outcomes) and are hashed via [Marshal]; the one config field
   that can hold a closure — [Custom_sinks] — contributes only its
   constructor tag, so two campaigns differing solely in a custom sink
   predicate fingerprint alike (documented in DESIGN.md: don't resume
   across predicate changes). *)
let sinks_tag : Engine.sink_config -> string = function
  | Engine.Output_syscalls -> "output"
  | Engine.Network_outputs -> "network"
  | Engine.File_outputs -> "file"
  | Engine.Attack_sinks -> "attack"
  | Engine.Custom_sinks _ -> "custom"

let fingerprint ?(retry = no_retries) ?deadline ~(config : Engine.config)
    (prog : Ir.program) (world : World.t) (params : slave_params list) : string =
  let m x = Marshal.to_string x [] in
  Store.fingerprint
    ([ "ldx-campaign/1";
       m prog;
       m world;
       string_of_int config.Engine.master_seed;
       string_of_int config.Engine.max_steps;
       sinks_tag config.Engine.sinks;
       m config.Engine.faults;
       m config.Engine.master_sched;
       string_of_bool config.Engine.record_sched;
       (match deadline with None -> "-" | Some d -> string_of_int d);
       Printf.sprintf "%d,%d,%d,%s,%b" retry.max_retries retry.seed_jitter
         retry.backoff
         (match retry.fuel_budget with None -> "-" | Some b -> string_of_int b)
         retry.quarantine ]
     @ List.map m params)

(* ---------- one task ---------- *)

let pow base e =
  let r = ref 1 in
  for _ = 1 to e do r := !r * base done;
  !r

(* Run one task under containment: exceptions become [Crashed], fuel
   traps become [Fuel_exhausted] (or [Timed_out] under a tightened
   deadline), retries (if any) are attempted with jittered slave seeds
   until the policy's count or fuel budget is spent.  This is the only
   place a slave pass is invoked, so sequential and parallel campaigns
   contain failures identically.  Returns the final status and the
   number of runs performed. *)
let run_task ~(retry : retry_policy) ?deadline ?obs ~(runner : runner)
    (config : Engine.config) (prog : Ir.program) (world : World.t)
    (mo : Engine.master_out) (p : slave_params) : status * int =
  (* the deadline only ever LOWERS the slave's fuel; the master summary
     comes from the recording, so master-side config agreement holds *)
  let tightened =
    match deadline with Some d -> d < config.Engine.max_steps | None -> false
  in
  let task_config p' =
    let c = apply config p' in
    if tightened then
      { c with Engine.max_steps = Option.get deadline }
    else c
  in
  (* one attempt's step cap — what a crashed run is charged against the
     fuel budget (conservative: it may have died earlier) *)
  let attempt_cap =
    if tightened then Option.get deadline else config.Engine.max_steps
  in
  let attempt_once p' : status * int =
    match runner ?obs (task_config p') prog world mo with
    | r ->
      let fuel (s : Engine.exec_summary) =
        Engine.classify_trap s.Engine.trap = Engine.Fuel
      in
      let spent = r.Engine.slave.Engine.steps in
      if fuel r.Engine.master then (Fuel_exhausted r, spent)
      else if fuel r.Engine.slave then
        ((if tightened then Timed_out r else Fuel_exhausted r), spent)
      else (Ok r, spent)
    | exception e ->
      let backtrace = Printexc.get_backtrace () in
      (Crashed { exn = Printexc.to_string e; backtrace }, attempt_cap)
  in
  let stride k = if retry.backoff <= 1 then k else pow retry.backoff (k - 1) in
  let budget_left spent =
    match retry.fuel_budget with None -> true | Some b -> spent < b
  in
  (* [attempt] counts retries already performed (0 = first run) *)
  let rec go attempt spent all_crashed =
    let p' =
      if attempt = 0 then p
      else
        { p with
          slave_seed = p.slave_seed + (retry.seed_jitter * stride attempt) }
    in
    let s, cost = attempt_once p' in
    let spent = spent + cost in
    let all_crashed =
      all_crashed && (match s with Crashed _ -> true | _ -> false)
    in
    match s with
    | Ok _ -> (s, attempt + 1)
    | Crashed _ | Fuel_exhausted _ | Timed_out _ | Quarantined _ ->
      if attempt < retry.max_retries && budget_left spent then
        go (attempt + 1) spent all_crashed
      else begin
        let attempts = attempt + 1 in
        let s =
          match s with
          | Crashed { exn; backtrace }
            when retry.quarantine && all_crashed && attempts > 1 ->
            (* the crash reproduced under a perturbed seed: it is
               deterministic, park it *)
            Quarantined { exn; backtrace }
          | s -> s
        in
        (s, attempts)
      end
  in
  go 0 0 true

(* ---------- per-task telemetry ---------- *)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* Wall cycles of a task's fate (0 when there is no result). *)
let wall_cycles_of (s : status) : int =
  match result_of s with Some r -> r.Engine.wall_cycles | None -> 0

(* [run_task] plus telemetry when a sink is present: a [Task_begin]
   marker before the first attempt and a [Task_timing] after the last,
   carrying the wall-clock queue-wait ([t0] = fan-out start) vs
   run-time split and the deterministic virtual wall.  With no sink
   this is exactly [run_task] — no clock reads on the lean path. *)
let run_task_telemetry ~retry ?deadline ?obs ~runner ~index ~t0
    (config : Engine.config) (prog : Ir.program) (world : World.t)
    (mo : Engine.master_out) (p : slave_params) : status * int =
  match obs with
  | None -> run_task ~retry ?deadline ~runner config prog world mo p
  | Some _ ->
    let t_start = now_us () in
    Obs.Sink.emit_opt obs (Obs.Event.Task_begin { label = p.label; index });
    let s, a = run_task ~retry ?deadline ?obs ~runner config prog world mo p in
    let t_end = now_us () in
    Obs.Sink.emit_opt obs
      (Obs.Event.Task_timing
         { label = p.label;
           index;
           queue_us = max 0 (t_start - t0);
           run_us = max 0 (t_end - t_start);
           wall_cycles = wall_cycles_of s });
    (s, a)

(* Mean-based remaining-cycles estimate for progress heartbeats. *)
let eta_cycles ~completed ~total ~cycles_done =
  if completed <= 0 then 0
  else cycles_done / completed * (total - completed)

(* ---------- parallel fan-out ---------- *)

(* Below roughly this many master-pass steps, a slave pass is so short
   that [Domain.spawn]/[Domain.join] overhead and the contended work
   queue dominate — the parallel path measures SLOWER than sequential
   (observed 0.70x at jobs=4 on small workloads).  [`Auto] mode falls
   back to sequential under this break-even. *)
let domain_break_even = 20_000

(* Fan the missing tasks out over [jobs] domains (the calling domain
   participates).  The work queue is a bounded atomic cursor over the
   index array, but domains claim contiguous CHUNKS of ~k/(4*jobs)
   tasks per fetch-and-add rather than single indexes: the contended
   atomic is touched ~4 times per domain instead of once per task,
   while the 4x over-decomposition keeps late-stage load balance when
   task costs are uneven.  Each result slot is written by exactly one
   domain and read only after the joins, which gives the necessary
   happens-before edges.  [run_task] never raises, and the joins are
   under [Fun.protect], so no domain can be leaked even if a worker or
   the calling domain dies unexpectedly.

   This lean path carries no sink and no journal; when either is
   present [run_collected] is used instead. *)
let run_parallel ~retry ?deadline ~runner ~jobs ~stop (config : Engine.config)
    (prog : Ir.program) (world : World.t) (mo : Engine.master_out)
    (tasks : slave_params array) (idxs : int array)
    (results : (status * int) option array) : unit =
  let k = Array.length idxs in
  let chunk = max 1 ((k + (4 * jobs) - 1) / (4 * jobs)) in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      (* drain check between chunk claims: [stop] must be domain-safe
         (it reads a flag a signal handler sets) *)
      if stop () then ()
      else
        let lo = Atomic.fetch_and_add next chunk in
        if lo < k then begin
          let hi = min k (lo + chunk) in
          let j = ref lo in
          while !j < hi && not (stop ()) do
            let i = idxs.(!j) in
            results.(i) <-
              Some (run_task ~retry ?deadline ~runner config prog world mo
                      tasks.(i));
            incr j
          done;
          loop ()
        end
    in
    loop ()
  in
  (* backtrace recording is per-domain: without propagating the calling
     domain's setting, a [Crashed] outcome would carry a backtrace or
     not depending on which domain happened to claim the task — a
     run-to-run nondeterminism in campaign output *)
  let record_bt = Printexc.backtrace_status () in
  let spawned =
    Array.init (min jobs k - 1) (fun _ ->
        Domain.spawn (fun () ->
            Printexc.record_backtrace record_bt;
            worker ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (* always join every spawned domain; a join that re-raises (its
         worker died outside the containment, e.g. on out-of-memory)
         must not prevent joining the rest *)
      let first_exn = ref None in
      Array.iter
        (fun d ->
           try Domain.join d
           with e -> if !first_exn = None then first_exn := Some e)
        spawned;
      match !first_exn with Some e -> raise e | None -> ())
    worker

(* Parallel fan-out with a collecting domain: used whenever a sink or a
   journal is present.  Worker domains run tasks with a PRIVATE
   buffered sink each (an event list needs no domain safety) and post
   (index, status, attempts, events) to a queue; the calling domain
   collects, appending each outcome to the journal write-through AS IT
   ARRIVES — so a kill at any point loses at most the in-flight tasks —
   and, after the joins, drains the event buffers into the real sink in
   task order.  Workers never touch the sink or the store. *)
let run_collected ~retry ?deadline ?obs ~runner ~jobs ~journal ~t0 ~stop
    (config : Engine.config) (prog : Ir.program) (world : World.t)
    (mo : Engine.master_out) (tasks : slave_params array) (idxs : int array)
    (results : (status * int) option array) : unit =
  let k = Array.length idxs in
  let w = max 1 (min jobs k) in
  let chunk = max 1 ((k + (4 * w) - 1) / (4 * w)) in
  let next = Atomic.make 0 in
  let q = Queue.create () in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let send msg =
    Mutex.lock mu;
    Queue.add msg q;
    Condition.signal cond;
    Mutex.unlock mu
  in
  let recv () =
    Mutex.lock mu;
    while Queue.is_empty q do Condition.wait cond mu done;
    let msg = Queue.pop q in
    Mutex.unlock mu;
    msg
  in
  let buffered = obs <> None in
  let worker () =
    let rec loop () =
      (* drain check between tasks: the in-flight task always finishes *)
      if stop () then ()
      else
        let lo = Atomic.fetch_and_add next chunk in
        if lo < k then begin
          let hi = min k (lo + chunk) in
          let j = ref lo in
          while !j < hi && not (stop ()) do
            let i = idxs.(!j) in
            let buf = ref [] in
            let task_obs =
              if buffered then
                Some (Obs.Sink.of_fn (fun ev -> buf := ev :: !buf))
              else None
            in
            let s, a =
              run_task_telemetry ~retry ?deadline ?obs:task_obs ~runner
                ~index:i ~t0 config prog world mo tasks.(i)
            in
            send (`Result (i, s, a, List.rev !buf));
            incr j
          done;
          loop ()
        end
    in
    (* a worker that dies outside the per-task containment must still
       announce itself, or the collector would wait forever *)
    (match loop () with
     | () -> send (`Exit None)
     | exception e -> send (`Exit (Some e)))
  in
  let record_bt = Printexc.backtrace_status () in
  let spawned =
    Array.init w (fun _ ->
        Domain.spawn (fun () ->
            Printexc.record_backtrace record_bt;
            worker ()))
  in
  let events : Obs.Event.t list array = Array.make (Array.length tasks) [] in
  let worker_exn = ref None in
  Fun.protect
    ~finally:(fun () ->
      let first_exn = ref None in
      Array.iter
        (fun d ->
           try Domain.join d
           with e -> if !first_exn = None then first_exn := Some e)
        spawned;
      match !first_exn with Some e -> raise e | None -> ())
    (fun () ->
       let exited = ref 0 in
       let completed = ref 0 in
       let cycles_done = ref 0 in
       while !exited < w do
         match recv () with
         | `Result (i, s, a, evs) ->
           results.(i) <- Some (s, a);
           events.(i) <- evs;
           Option.iter (fun t -> Store.append t i (encode_status s a)) journal;
           (* live heartbeat from the collecting domain, in arrival
              order (liveness, not determinism: progress events are
              excluded from traces/goldens) *)
           incr completed;
           cycles_done := !cycles_done + wall_cycles_of s;
           Obs.Sink.emit_opt obs
             (Obs.Event.Campaign_progress
                { completed = !completed;
                  total = k;
                  cycles_done = !cycles_done;
                  eta_cycles =
                    eta_cycles ~completed:!completed ~total:k
                      ~cycles_done:!cycles_done })
         | `Exit e ->
           incr exited;
           (match e with
            | Some e when !worker_exn = None -> worker_exn := Some e
            | _ -> ())
       done);
  (* satellite invariant: every slave-pass event reaches the sink, in
     task order, from this (the collecting) domain *)
  Array.iter (fun evs -> List.iter (Obs.Sink.emit_opt obs) evs) events;
  match !worker_exn with Some e -> raise e | None -> ()

(* ---------- the campaign ---------- *)

(* Is an incremental prefix sound for this fan-out?  Every task must
   share the prefix-relevant slave fields (seed, scheduler, trace
   recording); [sources], [strategy] and [check_final_state] are free to
   vary — they only act at or after the decouple point.  A caller's
   custom runner can't be short-circuited, and a [?deadline] lowers
   per-task fuel (changing the prefix machine), so both force the full
   path. *)
let incremental_eligible ~user_runner ~deadline (params : slave_params list) :
  bool =
  Option.is_none user_runner && deadline = None
  && (match params with
      | [] -> false
      | p0 :: rest ->
        List.for_all
          (fun p ->
             p.slave_seed = p0.slave_seed
             && p.record_trace = p0.record_trace
             && p.sched = p0.sched)
          rest)

(* Build the incremental runner: one shared slave prefix (executed here,
   on the calling domain, before any fan-out), then per-task suffix
   resumes.  Attempt-0 task configs match the snapshot's fingerprint by
   construction; retries jitter the slave seed, which changes the
   fingerprint and falls back to a full pass automatically.  Any
   surprise during the prefix falls back to the full path — incremental
   mode is an optimization, never a behavior change. *)
let incremental_runner ?obs (config : Engine.config) (prog : Ir.program)
    (world : World.t) (mo : Engine.master_out)
    (params : slave_params list) : runner =
  let p0 = List.hd params in
  let specs = List.concat_map (fun p -> p.sources) params in
  let prefix_cfg = apply config { p0 with sources = [] } in
  match Engine.slave_prefix ?obs prefix_cfg ~specs prog world mo with
  | Engine.Prefix_done so ->
    (* no syscall base-matches any task's sources: the whole slave run
       is shared, and each first attempt finalizes the one outcome under
       its own config (final-state checking may differ per task) *)
    let fp0 = Engine.slave_fingerprint prefix_cfg prog world in
    fun ?obs cfg prog world mo ->
      if String.equal fp0 (Engine.slave_fingerprint cfg prog world) then
        Engine.finalize_result ?obs cfg mo so
      else default_runner ?obs cfg prog world mo
  | Engine.Prefix_paused ss ->
    fun ?obs cfg prog world mo ->
      if
        String.equal ss.Engine.ss_fingerprint
          (Engine.slave_fingerprint cfg prog world)
      then
        Engine.finalize_result ?obs cfg mo
          (Engine.slave_resume ?obs cfg prog world mo ss)
      else default_runner ?obs cfg prog world mo
  | exception _ -> default_runner

let run_impl ~jobs ~mode ~obs ~retry ~deadline ~runner ~journal ~stop ~sync
    ~incremental
    ~(pre : (int * (status * int)) list) ~(pre_raw : (int * string) list)
    ~(config : Engine.config) (prog : Ir.program) (world : World.t)
    (params : slave_params list) : outcome list =
  let user_runner = runner in
  let runner = Option.value runner ~default:default_runner in
  let tasks = Array.of_list params in
  let n = Array.length tasks in
  let results : (status * int) option array = Array.make n None in
  let fresh = Array.make n false in
  List.iter
    (fun (i, sa) -> if i >= 0 && i < n then results.(i) <- Some sa)
    pre;
  let missing = List.filter (fun i -> results.(i) = None) (List.init n Fun.id) in
  (* checkpoint the manifest (and any replayed outcomes) via atomic
     rename BEFORE any task runs: a fresh run becomes resumable
     immediately, a resumed run heals its torn tail on disk *)
  let store =
    match journal with
    | None -> None
    | Some path ->
      let manifest =
        { Store.fingerprint =
            fingerprint ~retry ?deadline ~config prog world params;
          meta = [ ("tasks", string_of_int n) ];
          tasks = Array.to_list (Array.map (fun p -> p.label) tasks) }
      in
      let t = Store.checkpoint ~path ~sync manifest pre_raw in
      Obs.Sink.emit_opt obs
        (Obs.Event.Checkpoint
           { path; tasks = n; journaled = List.length pre_raw });
      Some t
  in
  Fun.protect ~finally:(fun () -> Option.iter Store.close store) @@ fun () ->
  (if missing <> [] then begin
     (* ONE master pass, shared by every slave task still to run; when
        everything replays from the journal even this is skipped *)
     let mo =
       Obs.Sink.emit_opt obs (Obs.Event.Phase_begin Obs.Event.Master_run);
       Fun.protect
         ~finally:(fun () ->
           Obs.Sink.emit_opt obs (Obs.Event.Phase_end Obs.Event.Master_run))
         (fun () -> Engine.master_pass ?obs config prog world)
     in
     (* incremental fan-out: one shared slave prefix now, per-task
        suffix resumes below (threaded through the runner seam, so
        retry containment and telemetry are untouched) *)
     let runner =
       if incremental && incremental_eligible ~user_runner ~deadline params
       then incremental_runner ?obs config prog world mo params
       else runner
     in
     let nmiss = List.length missing in
     (* mode resolution.  [`Auto] goes parallel only when it can
        plausibly win: more than one job AND missing task, a host with
        more than one recommended domain, and slave passes long enough
        (estimated by the master pass's step count — a slave pass
        replays the same program) to amortise domain spawn/join
        overhead. *)
     let parallel =
       jobs > 1 && nmiss > 1
       && (match mode with
           | `Sequential -> false
           | `Parallel -> true
           | `Auto ->
             Domain.recommended_domain_count () > 1
             && mo.Engine.msummary.Engine.steps >= domain_break_even)
     in
     Obs.Sink.emit_opt obs
       (Obs.Event.Campaign_plan
          { mode = (if parallel then "parallel" else "sequential");
            jobs = (if parallel then jobs else 1);
            tasks = nmiss;
            est_steps = mo.Engine.msummary.Engine.steps });
     let idxs = Array.of_list missing in
     let t0 = now_us () in
     if not parallel then begin
       let completed = ref 0 in
       let cycles_done = ref 0 in
       let drained = ref false in
       Array.iter
         (fun i ->
            (* drain check between tasks: the in-flight task finishes,
               its outcome is journaled, and we exit the loop *)
            if !drained || stop () then drained := true
            else begin
              let s, a =
                run_task_telemetry ~retry ?deadline ?obs ~runner ~index:i ~t0
                  config prog world mo tasks.(i)
              in
              results.(i) <- Some (s, a);
              Option.iter (fun t -> Store.append t i (encode_status s a)) store;
              incr completed;
              cycles_done := !cycles_done + wall_cycles_of s;
              Obs.Sink.emit_opt obs
                (Obs.Event.Campaign_progress
                   { completed = !completed;
                     total = nmiss;
                     cycles_done = !cycles_done;
                     eta_cycles =
                       eta_cycles ~completed:!completed ~total:nmiss
                         ~cycles_done:!cycles_done })
            end)
         idxs
     end
     else if obs = None && store = None then
       run_parallel ~retry ?deadline ~runner ~jobs ~stop config prog world mo
         tasks idxs results
     else
       run_collected ~retry ?deadline ?obs ~runner ~jobs ~journal:store ~t0
         ~stop config prog world mo tasks idxs results;
     Array.iter (fun i -> fresh.(i) <- true) idxs
   end);
  let drained = stop () in
  let outs =
    Array.to_list
      (Array.mapi
         (fun i p ->
            match results.(i) with
            | Some (status, attempts) -> { params = p; status; attempts }
            | None when drained ->
              (* a drain stopped the campaign before this task was
                 claimed; the journal (if any) holds every finished
                 outcome, so a later [resume] re-runs exactly these *)
              { params = p;
                status = Crashed { exn = "drained (not run)"; backtrace = "" };
                attempts = 0 }
            | None ->
              (* unreachable when the claims above completed; defensive
                 so a future bug degrades to a recorded failure, not an
                 abort *)
              { params = p;
                status =
                  Crashed { exn = "task slot never claimed"; backtrace = "" };
                attempts = 0 })
         tasks)
  in
  (* task fates are emitted from the calling domain, after collection,
     so the sink never sees concurrent emissions; [Quarantine] fires
     only for freshly-parked tasks (replayed ones announced it in the
     run that journaled them).  Tasks a drain never ran emit nothing —
     they have no fate yet. *)
  List.iteri
    (fun i o ->
       if not (drained && o.attempts = 0) then begin
         Obs.Sink.emit_opt obs
           (Obs.Event.Task_done
              { label = o.params.label;
                status = status_class o.status;
                attempts = o.attempts;
                exn =
                  (match o.status with
                   | Crashed { exn; _ } | Quarantined { exn; _ } -> Some exn
                   | Ok _ | Fuel_exhausted _ | Timed_out _ -> None) });
         match o.status with
         | Quarantined { exn; _ } when fresh.(i) ->
           Obs.Sink.emit_opt obs
             (Obs.Event.Quarantine
                { label = o.params.label; attempts = o.attempts; exn })
         | _ -> ()
       end)
    outs;
  outs

let never_stop () = false

let run ?(jobs = 1) ?(mode = `Auto) ?obs ?(retry = no_retries) ?deadline
    ?runner ?journal ?(stop = never_stop) ?(sync = false)
    ?(incremental = false) ~(config : Engine.config) (prog : Ir.program)
    (world : World.t) (params : slave_params list) : outcome list =
  run_impl ~jobs ~mode ~obs ~retry ~deadline ~runner ~journal ~stop ~sync
    ~incremental ~pre:[] ~pre_raw:[] ~config prog world params

let resume ?(jobs = 1) ?(mode = `Auto) ?obs ?(retry = no_retries) ?deadline
    ?runner ~journal ?(stop = never_stop) ?(sync = false)
    ?(incremental = false) ~(config : Engine.config) (prog : Ir.program)
    (world : World.t) (params : slave_params list) :
  (outcome list, string) result =
  match Store.load ~path:journal with
  | Error e -> Error e
  | Ok loaded ->
    let fp = fingerprint ~retry ?deadline ~config prog world params in
    if loaded.Store.l_manifest.Store.fingerprint <> fp then
      Error
        (Printf.sprintf
           "%s: fingerprint mismatch (journal %s, campaign %s): the journal \
            was written by a different campaign"
           journal loaded.Store.l_manifest.Store.fingerprint fp)
    else begin
      let n = List.length params in
      (* replay verbatim: keep the journal's own payload strings for the
         re-checkpoint so nothing is re-encoded along the way *)
      let pre_raw, pre =
        List.fold_left
          (fun (raw, dec) (i, payload) ->
             if i < 0 || i >= n then (raw, dec)
             else
               match decode_status payload with
               | Some sa -> ((i, payload) :: raw, (i, sa) :: dec)
               | None -> (raw, dec))
          ([], []) loaded.Store.l_outcomes
      in
      let pre_raw = List.rev pre_raw and pre = List.rev pre in
      Obs.Sink.emit_opt obs
        (Obs.Event.Resume
           { path = journal;
             tasks = n;
             replayed = List.length pre;
             rerun = n - List.length pre;
             torn = loaded.Store.l_torn });
      Ok
        (run_impl ~jobs ~mode ~obs ~retry ~deadline ~runner
           ~journal:(Some journal) ~stop ~sync ~incremental ~pre ~pre_raw
           ~config prog world params)
    end

(* ---------- the cross-process campaign service ---------- *)

(* A service campaign is the same campaign run by N PROCESSES instead
   of N domains: the v2 store file is both the journal and the work
   queue (see [Ldx_queue.Queue] for the lease protocol), and every
   worker independently records its own master pass — the recording is
   deterministic, so all workers hold byte-identical masters and any of
   them can run any task.  Outcomes are the same [encode_outcome]
   payloads [?journal] writes, which is why the collected table is
   byte-identical to a single-process run: same payloads, first-wins
   dedup, task order. *)
module Service = struct
  module Q = Ldx_queue.Queue

  let init ?(sync = false) ?(retry = no_retries) ?deadline ~path
      ~(config : Engine.config) (prog : Ir.program) (world : World.t)
      (params : slave_params list) : unit =
    let fp = fingerprint ~retry ?deadline ~config prog world params in
    let fresh () =
      let manifest =
        { Store.fingerprint = fp;
          meta = [ ("tasks", string_of_int (List.length params)) ];
          tasks = List.map (fun p -> p.label) params }
      in
      Store.close (Store.checkpoint_entries ~path ~sync manifest [])
    in
    match Store.load ~path with
    | Error _ -> fresh ()
    | Ok loaded ->
      if loaded.Store.l_manifest.Store.fingerprint = fp then
        (* same campaign: keep the journal (outcomes and all) and heal
           any torn records on disk — this is what makes restarting the
           supervisor a resume instead of a redo *)
        Store.close
          (Store.checkpoint_entries ~path ~sync loaded.Store.l_manifest
             loaded.Store.l_entries)
      else fresh ()

  let worker ?obs ?stop ?(sync = false) ?(retry = no_retries) ?deadline
      ?runner ?master ~path ~owner ~ttl_us ~heartbeat_us ~poll_us
      ~(config : Engine.config) (prog : Ir.program) (world : World.t)
      (params : slave_params list) :
    ([ `Complete | `Drained ], string) result =
    match Store.load ~path with
    | Error e -> Error e
    | Ok loaded ->
      let fp = fingerprint ~retry ?deadline ~config prog world params in
      if loaded.Store.l_manifest.Store.fingerprint <> fp then
        Error
          (Printf.sprintf
             "%s: fingerprint mismatch (journal %s, campaign %s): this \
              worker was launched with a different campaign spec"
             path loaded.Store.l_manifest.Store.fingerprint fp)
      else begin
        let runner = Option.value runner ~default:default_runner in
        let tasks = Array.of_list params in
        (* each worker records its own master pass — deterministic, so
           every worker's copy is byte-identical — but lazily: a worker
           joining a drained queue pays nothing.  [?master] lets
           in-process callers (bench, tests) share one recording. *)
        let mo =
          lazy
            (match master with
             | Some m -> m
             | None -> Engine.master_pass ?obs config prog world)
        in
        let t0 = now_us () in
        let task i =
          if i < 0 || i >= Array.length tasks then
            invalid_arg (Printf.sprintf "service task index %d out of range" i);
          let s, a =
            run_task_telemetry ~retry ?deadline ?obs ~runner ~index:i ~t0
              config prog world (Lazy.force mo) tasks.(i)
          in
          encode_outcome s a
        in
        match
          Q.Worker.run ?obs ?stop ~sync ~path ~owner ~ttl_us ~heartbeat_us
            ~poll_us task
        with
        | Q.Worker.Complete -> Ok `Complete
        | Q.Worker.Drained -> Ok `Drained
      end

  let escalate ?(sync = false) ~path ~kills () : (int, string) result =
    match Q.load ~path with
    | Error e -> Error e
    | Ok v ->
      let n = ref 0 in
      Array.iteri
        (fun i owners ->
           match v.Q.states.(i) with
           | Q.Done _ -> ()
           | Q.Free _ | Q.Leased _ ->
             if List.length owners >= kills then begin
               (* the task has eaten [kills] distinct workers: park it
                  as a cross-process quarantine so the fleet moves on.
                  The outcome record retires the task (Done wins over
                  any lease), exactly-once still holds. *)
               let exn =
                 Printf.sprintf "killed %d workers (%s)" (List.length owners)
                   (String.concat "," owners)
               in
               Q.complete ~path ~index:i
                 ~payload:
                   (encode_outcome
                      (Quarantined { exn; backtrace = "" })
                      (List.length owners))
                 ~sync ();
               incr n
             end)
        v.Q.expired_owners;
      Ok !n

  let collect ~path (params : slave_params list) :
    (outcome list, string) result =
    match Q.load ~path with
    | Error e -> Error e
    | Ok v ->
      let n = List.length params in
      if Array.length v.Q.states <> n then
        Error
          (Printf.sprintf "%s: journal has %d tasks, campaign has %d" path
             (Array.length v.Q.states) n)
      else if not (Q.is_complete v) then
        Error
          (Printf.sprintf "%s: campaign incomplete (%d tasks remaining)" path
             (Q.remaining v))
      else begin
        let arr = Array.of_list params in
        (* [Result.Ok]: the campaign's own [Ok of Engine.result] status
           constructor shadows the stdlib's here *)
        let rec decode_all acc : _ -> (outcome list, string) result = function
          | [] -> Result.Ok (List.rev acc)
          | (i, payload) :: rest ->
            (match decode_outcome payload with
             | Some (status, attempts) ->
               decode_all ({ params = arr.(i); status; attempts } :: acc) rest
             | None ->
               Error
                 (Printf.sprintf "%s: task %d outcome failed to decode" path i))
        in
        decode_all [] (Q.outcomes v)
      end
end

let render (outs : outcome list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %-14s %-18s %4s %8s %8s %8s %6s %10s\n" "task"
       "status" "failure" "att" "mutated" "diffs" "tainted" "leak" "wall_cyc");
  List.iter
    (fun o ->
       match o.status with
       | Crashed { exn; _ } | Quarantined { exn; _ } ->
         Buffer.add_string buf
           (Printf.sprintf "%-24s %-14s %-18s %4d %8s %8s %8s %6s %10s  %s\n"
              o.params.label (status_class o.status) "-" o.attempts "-" "-" "-"
              "-" "-" exn)
       | Ok r | Fuel_exhausted r | Timed_out r ->
         (* per-side failure classes, e.g. "ok/fuel" for a healthy
            master whose slave ran out of budget *)
         let cls s =
           Engine.(failure_class_to_string (classify_trap s.Engine.trap))
         in
         let failure =
           Printf.sprintf "%s/%s" (cls r.Engine.master) (cls r.Engine.slave)
         in
         Buffer.add_string buf
           (Printf.sprintf "%-24s %-14s %-18s %4d %8d %8d %8d %6b %10d\n"
              o.params.label (status_class o.status) failure o.attempts
              r.Engine.mutated_inputs r.Engine.syscall_diffs
              r.Engine.tainted_sinks r.Engine.leak r.Engine.wall_cycles))
    outs;
  Buffer.contents buf
