(* Campaign layer: one recorded master, N independent slave passes.

   The per-source attribution follow-up (Sec. 3) and the
   mutation-strategy study (Sec. 8.3) both re-run a dual execution per
   source/strategy, yet the master half is byte-identical across those
   runs: [Engine.master_pass] never reads the slave-only configuration
   fields (sources, strategy, slave_seed, record_trace), and a
   [master_out] is a frozen, replayable outcome log.  A campaign
   therefore pays ONE master pass and fans the K slave passes out —
   sequentially, or across an OCaml 5 domain pool with a bounded work
   queue.

   Determinism: each slave pass builds its own machine, OS and cursors
   from immutable inputs (the program, the world description, the frozen
   master log) and the VM scheduler is deterministically seeded, so a
   parallel campaign is byte-identical to a sequential one (asserted by
   the property suite). *)

module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Obs = Ldx_obs

(* Slave-side parameters only, by construction: anything expressible as
   a [slave_params] is sound to run against a shared master recording. *)
type slave_params = {
  label : string;
  sources : Engine.source_spec list;
  strategy : Mutation.strategy;
  slave_seed : int;
  record_trace : bool;
  check_final_state : bool;
}

let params_of_config ?(label = "base") (c : Engine.config) : slave_params =
  { label;
    sources = c.Engine.sources;
    strategy = c.Engine.strategy;
    slave_seed = c.Engine.slave_seed;
    record_trace = c.Engine.record_trace;
    check_final_state = c.Engine.check_final_state }

let apply (base : Engine.config) (p : slave_params) : Engine.config =
  { base with
    Engine.sources = p.sources;
    strategy = p.strategy;
    slave_seed = p.slave_seed;
    record_trace = p.record_trace;
    check_final_state = p.check_final_state }

let of_sources (c : Engine.config) : slave_params list =
  List.mapi
    (fun i spec ->
       { (params_of_config c) with
         label = Printf.sprintf "source#%d" i;
         sources = [ spec ] })
    c.Engine.sources

let of_strategies (c : Engine.config)
    (strategies : (string * Mutation.strategy) list) : slave_params list =
  List.map
    (fun (label, strategy) -> { (params_of_config c) with label; strategy })
    strategies

let of_seeds (c : Engine.config) (seeds : int list) : slave_params list =
  List.map
    (fun s ->
       { (params_of_config c) with
         label = Printf.sprintf "seed=%d" s;
         slave_seed = s })
    seeds

type outcome = {
  params : slave_params;
  result : Engine.result;
}

(* Fan tasks out over [jobs] domains (the calling domain participates).
   The work queue is a bounded atomic index over the task array: domains
   claim the next index until the array is exhausted; each result slot
   is written by exactly one domain and read only after the joins, which
   gives the necessary happens-before edges. *)
let run_parallel ~jobs (config : Engine.config) (prog : Ir.program)
    (world : World.t) (mo : Engine.master_out)
    (tasks : slave_params array) : Engine.result array =
  let n = Array.length tasks in
  let results : Engine.result option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let cfg = apply config tasks.(i) in
        results.(i) <- Some (Engine.run_with_master cfg prog world mo);
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  Array.map
    (function Some r -> r | None -> assert false (* every index claimed *))
    results

let run ?(jobs = 1) ?obs ~(config : Engine.config) (prog : Ir.program)
    (world : World.t) (params : slave_params list) : outcome list =
  let mo =
    Obs.Sink.emit_opt obs (Obs.Event.Phase_begin Obs.Event.Master_run);
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.emit_opt obs (Obs.Event.Phase_end Obs.Event.Master_run))
      (fun () -> Engine.master_pass ?obs config prog world)
  in
  if jobs <= 1 || List.length params <= 1 then
    List.map
      (fun p ->
         { params = p;
           result = Engine.run_with_master ?obs (apply config p) prog world mo })
      params
  else begin
    (* the observability sink is not required to be domain-safe, so the
       parallel path records the master only; results are unaffected
       (observation never perturbs the engine) *)
    let tasks = Array.of_list params in
    let results = run_parallel ~jobs config prog world mo tasks in
    List.mapi (fun i p -> { params = p; result = results.(i) }) params
  end

let render (outs : outcome list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %8s %8s %8s %6s\n" "task" "mutated" "diffs"
       "tainted" "leak");
  List.iter
    (fun o ->
       Buffer.add_string buf
         (Printf.sprintf "%-24s %8d %8d %8d %6b\n" o.params.label
            o.result.Engine.mutated_inputs o.result.Engine.syscall_diffs
            o.result.Engine.tainted_sinks o.result.Engine.leak))
    outs;
  Buffer.contents buf
