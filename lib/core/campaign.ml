(* Campaign layer: one recorded master, N independent slave passes.

   The per-source attribution follow-up (Sec. 3) and the
   mutation-strategy study (Sec. 8.3) both re-run a dual execution per
   source/strategy, yet the master half is byte-identical across those
   runs: [Engine.master_pass] never reads the slave-only configuration
   fields (sources, strategy, slave_seed, record_trace), and a
   [master_out] is a frozen, replayable outcome log.  A campaign
   therefore pays ONE master pass and fans the K slave passes out —
   sequentially, or across an OCaml 5 domain pool with a bounded work
   queue.

   Determinism: each slave pass builds its own machine, OS and cursors
   from immutable inputs (the program, the world description, the frozen
   master log) and the VM scheduler is deterministically seeded, so a
   parallel campaign is byte-identical to a sequential one (asserted by
   the property suite). *)

module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Obs = Ldx_obs

(* Slave-side parameters only, by construction: anything expressible as
   a [slave_params] is sound to run against a shared master recording. *)
type slave_params = {
  label : string;
  sources : Engine.source_spec list;
  strategy : Mutation.strategy;
  slave_seed : int;
  record_trace : bool;
  check_final_state : bool;
  sched : Engine.Sched.spec option;
}

let params_of_config ?(label = "base") (c : Engine.config) : slave_params =
  { label;
    sources = c.Engine.sources;
    strategy = c.Engine.strategy;
    slave_seed = c.Engine.slave_seed;
    record_trace = c.Engine.record_trace;
    check_final_state = c.Engine.check_final_state;
    sched = c.Engine.slave_sched }

let apply (base : Engine.config) (p : slave_params) : Engine.config =
  { base with
    Engine.sources = p.sources;
    strategy = p.strategy;
    slave_seed = p.slave_seed;
    record_trace = p.record_trace;
    check_final_state = p.check_final_state;
    slave_sched = p.sched }

let of_sources (c : Engine.config) : slave_params list =
  List.mapi
    (fun i spec ->
       { (params_of_config c) with
         label = Printf.sprintf "source#%d" i;
         sources = [ spec ] })
    c.Engine.sources

let of_strategies (c : Engine.config)
    (strategies : (string * Mutation.strategy) list) : slave_params list =
  List.map
    (fun (label, strategy) -> { (params_of_config c) with label; strategy })
    strategies

let of_seeds (c : Engine.config) (seeds : int list) : slave_params list =
  List.map
    (fun s ->
       { (params_of_config c) with
         label = Printf.sprintf "seed=%d" s;
         slave_seed = s })
    seeds

let of_scheds (c : Engine.config)
    (scheds : (string * Engine.Sched.spec) list) : slave_params list =
  List.map
    (fun (label, spec) -> { (params_of_config c) with label; sched = Some spec })
    scheds

(* A task's fate.  A raising slave pass is RECORDED, never fatal: one
   bad task must not take down the fleet (nor, in the parallel path,
   lose every sibling's result).  Fuel exhaustion gets its own arm —
   the result is still meaningful (both sides' partial summaries are
   there) but its verdict must not be trusted like a completed run's. *)
type status =
  | Ok of Engine.result
  | Crashed of { exn : string; backtrace : string }
  | Fuel_exhausted of Engine.result

type outcome = {
  params : slave_params;
  status : status;
}

let status_class = function
  | Ok _ -> "ok"
  | Crashed _ -> "crashed"
  | Fuel_exhausted _ -> "fuel-exhausted"

let result_of = function
  | Ok r | Fuel_exhausted r -> Some r
  | Crashed _ -> None

let result_exn (o : outcome) : Engine.result =
  match o.status with
  | Ok r | Fuel_exhausted r -> r
  | Crashed { exn; _ } ->
    invalid_arg (Printf.sprintf "campaign task %s crashed: %s" o.params.label exn)

(* Bounded retries for crashed/fuel-exhausted tasks.  Each retry re-runs
   the task with [slave_seed + attempt * seed_jitter]: a transient
   failure (schedule-dependent deadlock, fuel blow-up under an unlucky
   interleaving) clears under a perturbed schedule, a deterministic one
   reproduces — which is exactly the signal the retry count carries. *)
type retry_policy = {
  max_retries : int;
  seed_jitter : int;
}

let no_retries = { max_retries = 0; seed_jitter = 1 }

type runner =
  Engine.config -> Ir.program -> World.t -> Engine.master_out -> Engine.result

(* Run one task under containment: exceptions become [Crashed], fuel
   traps on either side become [Fuel_exhausted], retries (if any) are
   attempted with jittered slave seeds.  This is the only place a slave
   pass is invoked, so sequential and parallel campaigns contain
   failures identically. *)
let run_task ?(retry = no_retries) ~(runner : runner) (config : Engine.config)
    (prog : Ir.program) (world : World.t) (mo : Engine.master_out)
    (p : slave_params) : status =
  let attempt_once (p : slave_params) : status =
    match runner (apply config p) prog world mo with
    | r ->
      let fuel s = Engine.classify_trap s.Engine.trap = Engine.Fuel in
      if fuel r.Engine.master || fuel r.Engine.slave then Fuel_exhausted r
      else Ok r
    | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Crashed { exn = Printexc.to_string e; backtrace }
  in
  let rec go attempt =
    let p' =
      if attempt = 0 then p
      else { p with slave_seed = p.slave_seed + (attempt * retry.seed_jitter) }
    in
    match attempt_once p' with
    | Ok _ as s -> s
    | (Crashed _ | Fuel_exhausted _) as s ->
      if attempt < retry.max_retries then go (attempt + 1) else s
  in
  go 0

(* Below roughly this many master-pass steps, a slave pass is so short
   that [Domain.spawn]/[Domain.join] overhead and the contended work
   queue dominate — the parallel path measures SLOWER than sequential
   (observed 0.70x at jobs=4 on small workloads).  [`Auto] mode falls
   back to sequential under this break-even. *)
let domain_break_even = 20_000

(* Fan tasks out over [jobs] domains (the calling domain participates).
   The work queue is a bounded atomic cursor over the task array, but
   domains claim contiguous CHUNKS of ~n/(4*jobs) tasks per
   fetch-and-add rather than single indexes: the contended atomic is
   touched ~4 times per domain instead of once per task, while the 4x
   over-decomposition keeps late-stage load balance when task costs are
   uneven.  Each result slot is written by exactly one domain and read
   only after the joins, which gives the necessary happens-before
   edges.  [run_task] never raises, and the joins are under
   [Fun.protect], so no domain can be leaked even if a worker or the
   calling domain dies unexpectedly. *)
let run_parallel ?retry ?(runner = (Engine.run_with_master ?obs:None : runner))
    ~jobs (config : Engine.config) (prog : Ir.program) (world : World.t)
    (mo : Engine.master_out) (tasks : slave_params array) : status array =
  let n = Array.length tasks in
  let results : status option array = Array.make n None in
  let chunk = max 1 ((n + (4 * jobs) - 1) / (4 * jobs)) in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let lo = Atomic.fetch_and_add next chunk in
      if lo < n then begin
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          results.(i) <-
            Some (run_task ?retry ~runner config prog world mo tasks.(i))
        done;
        loop ()
      end
    in
    loop ()
  in
  (* backtrace recording is per-domain: without propagating the calling
     domain's setting, a [Crashed] outcome would carry a backtrace or
     not depending on which domain happened to claim the task — a
     run-to-run nondeterminism in campaign output *)
  let record_bt = Printexc.backtrace_status () in
  let spawned =
    Array.init (min jobs n - 1) (fun _ ->
        Domain.spawn (fun () ->
            Printexc.record_backtrace record_bt;
            worker ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (* always join every spawned domain; a join that re-raises (its
         worker died outside the containment, e.g. on out-of-memory)
         must not prevent joining the rest *)
      let first_exn = ref None in
      Array.iter
        (fun d ->
           try Domain.join d
           with e -> if !first_exn = None then first_exn := Some e)
        spawned;
      match !first_exn with Some e -> raise e | None -> ())
    worker;
  Array.map
    (function
      | Some s -> s
      | None ->
        (* unreachable when the claims above completed; defensive so a
           future bug degrades to a recorded failure, not an abort *)
        Crashed { exn = "task slot never claimed"; backtrace = "" })
    results

let run ?(jobs = 1) ?(mode = `Auto) ?obs ?retry ?runner
    ~(config : Engine.config) (prog : Ir.program) (world : World.t)
    (params : slave_params list) : outcome list =
  let runner : runner =
    match runner with
    | Some r -> r
    | None -> fun cfg prog world mo -> Engine.run_with_master ?obs cfg prog world mo
  in
  let mo =
    Obs.Sink.emit_opt obs (Obs.Event.Phase_begin Obs.Event.Master_run);
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.emit_opt obs (Obs.Event.Phase_end Obs.Event.Master_run))
      (fun () -> Engine.master_pass ?obs config prog world)
  in
  let ntasks = List.length params in
  (* mode resolution.  [`Auto] goes parallel only when it can plausibly
     win: more than one job AND task, a host with more than one
     recommended domain, and slave passes long enough (estimated by the
     master pass's step count — a slave pass replays the same program)
     to amortise domain spawn/join overhead. *)
  let parallel =
    jobs > 1 && ntasks > 1
    && (match mode with
        | `Sequential -> false
        | `Parallel -> true
        | `Auto ->
          Domain.recommended_domain_count () > 1
          && mo.Engine.msummary.Engine.steps >= domain_break_even)
  in
  Obs.Sink.emit_opt obs
    (Obs.Event.Campaign_plan
       { mode = (if parallel then "parallel" else "sequential");
         jobs = (if parallel then jobs else 1);
         tasks = ntasks;
         est_steps = mo.Engine.msummary.Engine.steps });
  let outs =
    if not parallel then
      List.map
        (fun p ->
           { params = p;
             status = run_task ?retry ~runner config prog world mo p })
        params
    else begin
      (* the observability sink is not required to be domain-safe, so the
         parallel path records the master only; results are unaffected
         (observation never perturbs the engine).  The parallel runner
         drops the sink for the same reason. *)
      let runner : runner =
        match obs with
        | None -> runner
        | Some _ -> fun cfg prog world mo ->
          Engine.run_with_master ?obs:None cfg prog world mo
      in
      let tasks = Array.of_list params in
      let statuses = run_parallel ?retry ~runner ~jobs config prog world mo tasks in
      List.mapi (fun i p -> { params = p; status = statuses.(i) }) params
    end
  in
  (* task fates are emitted from the calling domain, after collection,
     so the sink never sees concurrent emissions *)
  List.iter
    (fun o ->
       Obs.Sink.emit_opt obs
         (Obs.Event.Task_done
            { label = o.params.label;
              status = status_class o.status;
              exn =
                (match o.status with
                 | Crashed { exn; _ } -> Some exn
                 | Ok _ | Fuel_exhausted _ -> None) }))
    outs;
  outs

let render (outs : outcome list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %-14s %-18s %8s %8s %8s %6s\n" "task" "status"
       "failure" "mutated" "diffs" "tainted" "leak");
  List.iter
    (fun o ->
       match o.status with
       | Crashed { exn; _ } ->
         Buffer.add_string buf
           (Printf.sprintf "%-24s %-14s %-18s %8s %8s %8s %6s  %s\n"
              o.params.label "crashed" "-" "-" "-" "-" "-" exn)
       | Ok r | Fuel_exhausted r ->
         (* per-side failure classes, e.g. "ok/fuel" for a healthy
            master whose slave ran out of budget *)
         let cls s = Engine.(failure_class_to_string (classify_trap s.Engine.trap)) in
         let failure =
           Printf.sprintf "%s/%s" (cls r.Engine.master) (cls r.Engine.slave)
         in
         Buffer.add_string buf
           (Printf.sprintf "%-24s %-14s %-18s %8d %8d %8d %6b\n"
              o.params.label (status_class o.status) failure
              r.Engine.mutated_inputs r.Engine.syscall_diffs
              r.Engine.tainted_sinks r.Engine.leak))
    outs;
  Buffer.contents buf
