(** A recorded thread schedule: the compact log of one execution's
    scheduling decisions.

    Each entry carries exactly what the VM's pick point consumes — the
    chosen thread (by spawn index, the dual-execution pairing key) and
    the quantum granted in VM steps.  The log is immutable once built;
    replaying executions read it through a mutable {!cursor} which can
    be copied mid-run ({!copy_cursor}), so a cloned execution continues
    the schedule exactly where the original was — the same
    plan/state discipline as [Ldx_osim.Fault]. *)

type entry = {
  s_thread : int;    (** chosen thread, by spawn index *)
  s_quantum : int;   (** steps granted before the next pick *)
}

type t = entry array

val length : t -> int
val of_list : entry list -> t
val to_list : t -> entry list

(** [entry s i] is the [i]-th decision.
    @raise Invalid_argument when out of bounds. *)
val entry : t -> int -> entry

(** {2 Cursors} *)

type cursor

(** A fresh cursor at decision 0. *)
val start : t -> cursor

(** Mid-execution copy, fault-counter style: same immutable log, same
    position; clone and original advance independently from here. *)
val copy_cursor : cursor -> cursor

val pos : cursor -> int
val exhausted : cursor -> bool

(** The next recorded decision, advancing the cursor; [None] when the
    log is exhausted. *)
val next : cursor -> entry option

(** {2 Serialization}

    Line-oriented text: a ["# ldx-sched/1"] header, then one
    ["THREAD QUANTUM"] pair per decision.  ['#'] comments and blank
    lines are ignored on input. *)

val header : string
val to_string : t -> string
val of_string : string -> (t, string) result
