(** Bounded schedule exploration (iterative context bounding).

    Engine-agnostic: the caller's [run] executes under a
    {!Scheduler.Forced} override list (empty list = the base
    round-robin schedule) with recording on, and returns the decision
    trace plus any result.  Children force, at one decision with more
    than one runnable thread, a different choice than the one the
    parent took — one additional preemption.  The worklist is
    breadth-first over override-list length (all schedules with 0
    forced preemptions, then 1, … up to [bound]); distinct
    interleavings are identified by their chosen-thread sequence. *)

type 'a outcome = {
  x_forced : (int * int) list;   (** the override list that produced it *)
  x_trace : Scheduler.decision array;
  x_signature : string;          (** chosen-thread sequence, e.g. ["0.1.0."] *)
  x_value : 'a;
}

(** The chosen-thread sequence of a recorded trace — the identity of an
    interleaving. *)
val signature : Scheduler.decision array -> string

(** [enumerate ~bound ~max_schedules ~run ()] explores up to
    [max_schedules] {e distinct} interleavings with at most [bound]
    forced preemptions each (defaults 2 and 32), in deterministic
    breadth-first order.  [run] is called once per candidate override
    list; candidates whose trace matches an already-seen signature are
    discarded and generate no children. *)
val enumerate :
  ?bound:int -> ?max_schedules:int ->
  run:((int * int) list -> Scheduler.decision array * 'a) -> unit ->
  'a outcome list
