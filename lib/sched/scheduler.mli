(** Pluggable deterministic thread scheduling for the MiniC VM.

    A {!spec} is an immutable policy + seed; {!instantiate} turns it
    into a per-execution {!state} holding the mutable pick cursor (and,
    when recording, the decision log) — the same plan/state split as
    [Ldx_osim.Fault], and for the same reason: the SAME spec
    instantiated twice drives the SAME interleaving, so a master and a
    slave (or any number of campaign slaves) reproduce one schedule
    independently.  No policy ever consults a live RNG: randomness is a
    hash of (seed, decision index), bit-reproducible across executions,
    domains and processes. *)

type policy =
  | Round_robin
      (** Bit-identical to the VM's historical hard-wired scheduler
          (pick [runnable.(cursor mod n)], seeded quantum) — the
          default, and the baseline the pinned per-workload syscall
          counts are asserted against. *)
  | Random
      (** Pick and quantum drawn from a hash of (seed, decision
          index). *)
  | Priority of (int * int) list
      (** [(spawn index, priority)]; highest priority runs, round-robin
          among equals, unlisted threads have priority 0. *)
  | Replay of Schedule.t
      (** Follow a recorded schedule through a cursor; falls back to
          round-robin when the recorded thread is not runnable or the
          log is exhausted. *)
  | Forced of (int * int) list
      (** [(decision index, thread)] overrides on top of round-robin —
          the bounded-exploration hook ({!Explore}): runs sharing a
          forced prefix execute identically up to the first differing
          override. *)
  | Pinned of int
      (** Hostile testing policy: always names this spawn index, with
          no runnability check — exercises the VM's pick validation
          (a bad pick must trap cleanly, not crash).  Not reachable
          from the CLI. *)

type spec = {
  policy : policy;
  seed : int;
  quantum_override : int option;
      (** fixed quantum instead of the seeded perturbation *)
}

val spec : ?seed:int -> ?quantum:int -> policy -> spec

(** The spec of the VM's historical scheduler (round-robin, seeded
    quantum): [Machine.create]'s default. *)
val legacy : seed:int -> spec

(** One scheduling decision.  [d_runnable] is the choice set (spawn
    indexes in thread-creation order) — captured only when the state
    records, [[||]] otherwise. *)
type decision = {
  d_index : int;
  d_chosen : int;
  d_quantum : int;
  d_preempted : bool;   (** the previously-running thread was still runnable *)
  d_nrunnable : int;    (** size of the choice set (always populated) *)
  d_runnable : int array;
}

type state

(** [~record] keeps the full decision log (see {!trace},
    {!to_schedule}); off by default — the recording path is the only
    one that allocates per decision. *)
val instantiate : ?record:bool -> spec -> state

val spec_of : state -> spec

(** Mid-execution copy: same spec, same cursors — a cloned execution
    continues the schedule exactly where the original was
    ([Fault.copy_state] discipline).  The clone starts an empty
    decision log. *)
val copy : state -> state

(** Like {!copy} but the recorded decision log survives — the snapshot
    variant ([Machine.snapshot]): a restored execution's trace covers
    the pre-snapshot prefix. *)
val copy_full : state -> state

(** Decisions made so far. *)
val decisions : state -> int

(** Decisions that switched away from a still-runnable thread. *)
val preemptions : state -> int

(** Recorded decisions, oldest first; empty unless [~record]. *)
val trace : state -> decision array

(** The recorded log as a replayable {!Schedule.t}. *)
val to_schedule : state -> Schedule.t

(** The historical quantum perturbation, kept bit-for-bit:
    [8 + ((seed lxor (steps * 2654435761)) land 31)]. *)
val legacy_quantum : seed:int -> steps:int -> int

(** [pick st ~runnable ~steps] makes one scheduling decision over the
    current runnable set (spawn indexes in creation order).  [steps] is
    the VM step count at the pick (consumed by the legacy quantum
    formula).
    @raise Invalid_argument on an empty runnable set. *)
val pick : state -> runnable:int array -> steps:int -> decision

(** {2 CLI surface} *)

val policy_name : policy -> string

(** Debug/reporting rendering, e.g. ["random/seed=7"]. *)
val spec_to_string : spec -> string

(** Parse ["rr" | "round-robin" | "random" | "prio:T=P,..."]; [Replay]
    and [Forced] are built programmatically. *)
val policy_of_string : string -> (policy, string) result
