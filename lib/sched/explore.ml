(* Bounded schedule exploration (iterative context bounding).

   The enumerator is engine-agnostic: the caller supplies [run], which
   executes under a [Scheduler.Forced] override list (empty = the base
   round-robin schedule) and returns the recorded decision trace plus
   whatever result it wants to keep.  From each explored trace the
   enumerator derives children by forcing, at one decision with more
   than one runnable thread, a different choice than the one taken —
   i.e. one additional preemption.  Because the base policy is
   deterministic, a child's execution is identical to its parent's up
   to the forcing point, so the recorded parent trace is a faithful
   oracle for the child's early runnable sets.

   The worklist is breadth-first over the number of overrides, which is
   exactly iterative context bounding: all schedules with 0 forced
   preemptions, then 1, then 2, up to [bound].  Children are generated
   only at decisions at or after the parent's last forcing point, so
   each override list is generated once; residual duplicates (two
   override lists driving the same chosen sequence) are collapsed by
   the chosen-sequence signature. *)

type 'a outcome = {
  x_forced : (int * int) list;   (* the override list that produced it *)
  x_trace : Scheduler.decision array;
  x_signature : string;
  x_value : 'a;
}

(* The chosen-thread sequence, the identity of an interleaving. *)
let signature (trace : Scheduler.decision array) : string =
  let buf = Buffer.create (Array.length trace * 3) in
  Array.iter
    (fun (d : Scheduler.decision) ->
       Buffer.add_string buf (string_of_int d.Scheduler.d_chosen);
       Buffer.add_char buf '.')
    trace;
  Buffer.contents buf

let enumerate ?(bound = 2) ?(max_schedules = 32)
    ~(run : (int * int) list -> Scheduler.decision array * 'a) () :
  'a outcome list =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let results = ref [] in
  let count = ref 0 in
  (* worklist of (override list, first decision index eligible for a
     new override); FIFO = breadth-first over override-list length *)
  let work : ((int * int) list * int) Queue.t = Queue.create () in
  Queue.add ([], 0) work;
  while (not (Queue.is_empty work)) && !count < max_schedules do
    let forced, from = Queue.pop work in
    let trace, value = run forced in
    let sg = signature trace in
    if not (Hashtbl.mem seen sg) then begin
      Hashtbl.replace seen sg ();
      incr count;
      results :=
        { x_forced = forced; x_trace = trace; x_signature = sg;
          x_value = value }
        :: !results;
      if List.length forced < bound then
        Array.iteri
          (fun i (d : Scheduler.decision) ->
             if i >= from then
               Array.iter
                 (fun alt ->
                    if alt <> d.Scheduler.d_chosen then
                      Queue.add (forced @ [ (i, alt) ], i + 1) work)
                 d.Scheduler.d_runnable)
          trace
    end
  done;
  List.rev !results
