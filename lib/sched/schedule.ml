(* A recorded thread schedule: the compact log of scheduling decisions
   of one execution.

   Each entry is (chosen spawn index, quantum in VM steps) — exactly the
   information the VM's pick point consumes, and nothing else.  The log
   is immutable once built; executions that replay it read through a
   [cursor], a mutable position that can be copied mid-run so a cloned
   execution (the slave decoupling, a forked process) continues the
   schedule exactly where the original was — the same discipline as
   [Ldx_osim.Fault]'s plan/state split. *)

type entry = {
  s_thread : int;               (* chosen thread, by spawn index *)
  s_quantum : int;              (* steps granted before the next pick *)
}

type t = entry array

let length (s : t) = Array.length s

let of_list = Array.of_list
let to_list = Array.to_list

let entry (s : t) i = s.(i)

(* ------------------------------------------------------------------ *)
(* Cursor: a consumer's read position.                                 *)

type cursor = {
  sched : t;
  mutable pos : int;
}

let start (s : t) : cursor = { sched = s; pos = 0 }

(* Mid-execution copy, fault-counter style: same immutable log, same
   position — the clone and the original advance independently from
   here. *)
let copy_cursor (c : cursor) : cursor = { sched = c.sched; pos = c.pos }

let pos (c : cursor) = c.pos
let exhausted (c : cursor) = c.pos >= Array.length c.sched

let next (c : cursor) : entry option =
  if c.pos >= Array.length c.sched then None
  else begin
    let e = c.sched.(c.pos) in
    c.pos <- c.pos + 1;
    Some e
  end

(* ------------------------------------------------------------------ *)
(* Serialization: a line-oriented text format for --sched-record /
   --sched-replay.  Header line, then one "THREAD QUANTUM" pair per
   decision.  Blank lines and '#' comments are ignored on input.       *)

let header = "ldx-sched/1"

let to_string (s : t) : string =
  let buf = Buffer.create (16 + (Array.length s * 8)) in
  Buffer.add_string buf ("# " ^ header ^ "\n");
  Array.iter
    (fun e ->
       Buffer.add_string buf (string_of_int e.s_thread);
       Buffer.add_char buf ' ';
       Buffer.add_string buf (string_of_int e.s_quantum);
       Buffer.add_char buf '\n')
    s;
  Buffer.contents buf

let of_string (text : string) : (t, string) result =
  let entries = ref [] in
  let err = ref None in
  List.iteri
    (fun lineno line ->
       if !err = None then begin
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ th; q ] ->
             (match (int_of_string_opt th, int_of_string_opt q) with
              | Some s_thread, Some s_quantum when s_quantum > 0 ->
                entries := { s_thread; s_quantum } :: !entries
              | _ ->
                err :=
                  Some (Printf.sprintf "line %d: malformed entry %S"
                          (lineno + 1) line))
           | _ ->
             err :=
               Some (Printf.sprintf "line %d: expected 'THREAD QUANTUM', got %S"
                       (lineno + 1) line)
       end)
    (String.split_on_char '\n' text);
  match !err with
  | Some e -> Error e
  | None -> Ok (Array.of_list (List.rev !entries))
