(* Pluggable deterministic thread scheduling for the MiniC VM.

   A [spec] is an immutable description of a scheduling policy plus its
   seed; [instantiate] turns it into a per-execution [state] holding the
   mutable pick cursor (and, when recording, the decision log) — the
   same plan/state split as [Ldx_osim.Fault], and for the same reason:
   the SAME spec instantiated twice drives the SAME interleaving, which
   is what lets a master and a slave (or any number of campaign slaves)
   reproduce one schedule independently.

   Policies:
   - [Round_robin] is bit-identical to the VM's historical hard-wired
     scheduler: pick runnable[(cursor mod n)], cursor++, quantum
     8 + ((seed lxor (steps * 2654435761)) land 31).  Pinned
     interleavings (and the asymmetric per-workload syscall counts the
     regression suite asserts) therefore survive the refactor.
   - [Random] draws the pick from a hash of (seed, decision index) —
     never a live RNG, so it is bit-reproducible across executions,
     domains and processes.
   - [Priority] always runs the highest-priority runnable thread,
     round-robin among equals; unlisted threads have priority 0.
   - [Replay] follows a recorded {!Schedule.t} through a cursor,
     falling back to round-robin when the recorded thread is not
     currently runnable (the execution being replayed onto has
     diverged) or the log is exhausted.
   - [Forced] is the exploration hook: a sparse list of
     (decision index, thread) overrides on top of round-robin.  Because
     the base policy is deterministic, two runs sharing a forced prefix
     execute identically up to the first differing override — the
     property the bounded enumerator ({!Explore}) rests on.
   - [Pinned] always names one spawn index, with NO runnability check —
     a deliberately hostile policy for testing the VM's pick validation
     (the VM must trap cleanly, not crash, when a scheduler names a
     blocked or nonexistent thread).  Not reachable from the CLI. *)

type policy =
  | Round_robin
  | Random
  | Priority of (int * int) list    (* (spawn index, priority) *)
  | Replay of Schedule.t
  | Forced of (int * int) list      (* (decision index, forced thread) *)
  | Pinned of int                   (* hostile: always this spawn index *)

type spec = {
  policy : policy;
  seed : int;
  quantum_override : int option;    (* fixed quantum instead of the seeded one *)
}

let spec ?(seed = 0) ?quantum policy =
  { policy; seed; quantum_override = quantum }

(* The spec of the VM's historical scheduler. *)
let legacy ~seed = { policy = Round_robin; seed; quantum_override = None }

type decision = {
  d_index : int;                    (* 0-based decision number *)
  d_chosen : int;                   (* chosen thread, by spawn index *)
  d_quantum : int;
  d_preempted : bool;               (* previous thread was still runnable *)
  d_nrunnable : int;                (* size of the choice set *)
  d_runnable : int array;           (* the choice set; captured when recording *)
}

type state = {
  sspec : spec;
  record : bool;
  mutable cursor : int;             (* round-robin rotation *)
  mutable index : int;              (* decisions made so far *)
  mutable last : int;               (* last chosen thread; -1 before any *)
  mutable preemptions : int;
  replay_cursor : Schedule.cursor option;
  mutable rev_log : decision list;  (* only when [record] *)
}

let instantiate ?(record = false) (s : spec) : state =
  { sspec = s;
    record;
    cursor = 0;
    index = 0;
    last = -1;
    preemptions = 0;
    replay_cursor =
      (match s.policy with
       | Replay sched -> Some (Schedule.start sched)
       | Round_robin | Random | Priority _ | Forced _ | Pinned _ -> None);
    rev_log = [] }

let spec_of (st : state) : spec = st.sspec

(* Mid-execution copy: same spec, same cursors — a cloned execution
   continues the schedule exactly where the original was.  The decision
   log is NOT shared (the clone starts its own), mirroring how
   [Fault.copy_state] copies counters but not observers. *)
let copy (st : state) : state =
  { st with
    replay_cursor = Option.map Schedule.copy_cursor st.replay_cursor;
    rev_log = [] }

(* Snapshot copy: like [copy] but the decision log survives (the log
   list is immutable, so sharing its cells is safe), so a restored
   execution's recorded trace covers the pre-snapshot prefix too. *)
let copy_full (st : state) : state =
  { st with
    replay_cursor = Option.map Schedule.copy_cursor st.replay_cursor }

let decisions (st : state) = st.index
let preemptions (st : state) = st.preemptions

(* Recorded decisions, oldest first.  Empty unless [~record] was set. *)
let trace (st : state) : decision array =
  Array.of_list (List.rev st.rev_log)

let to_schedule (st : state) : Schedule.t =
  Array.of_list
    (List.rev_map
       (fun d -> { Schedule.s_thread = d.d_chosen; s_quantum = d.d_quantum })
       st.rev_log)

(* ------------------------------------------------------------------ *)
(* Picking.                                                            *)

(* The historical quantum perturbation (kept bit-for-bit). *)
let legacy_quantum ~seed ~steps = 8 + ((seed lxor (steps * 2654435761)) land 31)

(* Derandomised pick hash over (seed, decision index) — the [Fault.coin]
   design: no live RNG anywhere, so every policy is bit-reproducible. *)
let mix ~seed ~index =
  let h = (seed * 0x9E3779B1) lxor (index * 0x85EBCA6B) in
  let h = h lxor (h lsr 15) in
  (h * 0xC2B2AE35) land 0x3FFFFFFF

let rr_pick st (runnable : int array) =
  let n = Array.length runnable in
  let chosen = runnable.(st.cursor mod n) in
  st.cursor <- st.cursor + 1;
  chosen

let contains (a : int array) (x : int) =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

(* One scheduling decision over the current [runnable] set (spawn
   indexes in thread-creation order, never empty).  [steps] is the VM's
   step count at the pick, which the legacy quantum formula consumes. *)
let pick (st : state) ~(runnable : int array) ~(steps : int) : decision =
  if Array.length runnable = 0 then
    invalid_arg "Scheduler.pick: empty runnable set";
  let seed = st.sspec.seed in
  let default_quantum () =
    match st.sspec.quantum_override with
    | Some q -> q
    | None -> legacy_quantum ~seed ~steps
  in
  let chosen, quantum =
    match st.sspec.policy with
    | Round_robin -> (rr_pick st runnable, default_quantum ())
    | Random ->
      let h = mix ~seed ~index:st.index in
      let chosen = runnable.(h mod Array.length runnable) in
      let quantum =
        match st.sspec.quantum_override with
        | Some q -> q
        | None -> 4 + ((h lsr 12) land 31)
      in
      (chosen, quantum)
    | Priority prios ->
      let prio t =
        match List.assoc_opt t prios with Some p -> p | None -> 0
      in
      let best =
        Array.fold_left (fun acc t -> max acc (prio t)) min_int runnable
      in
      let cands = Array.of_list
          (List.filter (fun t -> prio t = best) (Array.to_list runnable))
      in
      (rr_pick st cands, default_quantum ())
    | Replay _ ->
      let c = Option.get st.replay_cursor in
      (match Schedule.next c with
       | Some e ->
         (* the recorded thread may not be runnable here (the execution
            replayed onto has diverged): fall back to round-robin but
            keep consuming the log, staying in lockstep by decision *)
         if contains runnable e.Schedule.s_thread then
           (e.Schedule.s_thread, e.Schedule.s_quantum)
         else (rr_pick st runnable, e.Schedule.s_quantum)
       | None -> (rr_pick st runnable, default_quantum ()))
    | Forced forced ->
      (match List.assoc_opt st.index forced with
       | Some t when contains runnable t ->
         (* a forced divergence consumes the round-robin rotation too,
            so decisions after the override keep their base phase *)
         st.cursor <- st.cursor + 1;
         (t, default_quantum ())
       | Some _ | None -> (rr_pick st runnable, default_quantum ()))
    | Pinned t ->
      (* no [contains] check, by design: the point is to hand the VM a
         pick it must validate *)
      (t, default_quantum ())
  in
  let preempted = st.last >= 0 && st.last <> chosen && contains runnable st.last in
  if preempted then st.preemptions <- st.preemptions + 1;
  let d =
    { d_index = st.index;
      d_chosen = chosen;
      d_quantum = quantum;
      d_preempted = preempted;
      d_nrunnable = Array.length runnable;
      d_runnable = (if st.record then Array.copy runnable else [||]) }
  in
  st.index <- st.index + 1;
  st.last <- chosen;
  if st.record then st.rev_log <- d :: st.rev_log;
  d

(* ------------------------------------------------------------------ *)
(* Spec naming (CLI surface).                                          *)

let policy_name = function
  | Round_robin -> "rr"
  | Random -> "random"
  | Priority _ -> "prio"
  | Replay _ -> "replay"
  | Forced _ -> "forced"
  | Pinned _ -> "pinned"

let spec_to_string (s : spec) =
  let base =
    match s.policy with
    | Round_robin -> "rr"
    | Random -> "random"
    | Priority prios ->
      "prio:"
      ^ String.concat ","
          (List.map (fun (t, p) -> Printf.sprintf "%d=%d" t p) prios)
    | Replay sched -> Printf.sprintf "replay[%d]" (Schedule.length sched)
    | Forced forced ->
      "forced:"
      ^ String.concat ","
          (List.map (fun (i, t) -> Printf.sprintf "%d=%d" i t) forced)
    | Pinned t -> Printf.sprintf "pinned:%d" t
  in
  Printf.sprintf "%s/seed=%d%s" base s.seed
    (match s.quantum_override with
     | Some q -> Printf.sprintf "/q=%d" q
     | None -> "")

(* Parse a CLI policy name: "rr" | "random" | "prio:T=P,T=P,...".
   Replay and Forced have richer inputs (a schedule file, an
   enumerator) and are built programmatically. *)
let policy_of_string (s : string) : (policy, string) result =
  match s with
  | "rr" | "round-robin" -> Ok Round_robin
  | "random" -> Ok Random
  | _ ->
    if String.length s > 5 && String.sub s 0 5 = "prio:" then begin
      let body = String.sub s 5 (String.length s - 5) in
      let pairs = String.split_on_char ',' body in
      let parsed =
        List.map
          (fun p ->
             match String.split_on_char '=' p with
             | [ t; pr ] ->
               (match (int_of_string_opt t, int_of_string_opt pr) with
                | Some t, Some pr -> Ok (t, pr)
                | _ -> Error p)
             | _ -> Error p)
          pairs
      in
      match
        List.find_opt (function Error _ -> true | Ok _ -> false) parsed
      with
      | Some (Error p) -> Error (Printf.sprintf "bad priority pair %S" p)
      | _ ->
        Ok
          (Priority
             (List.filter_map
                (function Ok x -> Some x | Error _ -> None)
                parsed))
    end
    else Error (Printf.sprintf "unknown scheduling policy %S" s)
