module J = Ldx_obs.Json

type outcome = {
  bd_regressions : int;
  bd_checks : int;
  bd_report : string;
}

let ( let* ) r f = Result.bind r f

let obj_field name j =
  match J.member name j with
  | Some (J.Obj fields) -> Ok fields
  | Some _ -> Error (Printf.sprintf "bench json: %S is not an object" name)
  | None -> Error (Printf.sprintf "bench json: missing %S" name)

let check_schema j =
  match J.member "schema" j with
  | Some (J.Str "ldx-bench/1") -> Ok ()
  | Some (J.Str s) ->
    Error (Printf.sprintf "bench json: schema %S, expected \"ldx-bench/1\"" s)
  | _ -> Error "bench json: missing schema"

let scalar_to_string = function
  | J.Bool b -> string_of_bool b
  | J.Int n -> string_of_int n
  | J.Float f -> Printf.sprintf "%.6g" f
  | J.Null -> "null"
  | v -> J.to_string v

(* Deterministic counters: exact equality, every key of every baseline
   workload must be present and identical in the current run. *)
let compare_counters ~buf ~checks ~regressions base cur =
  List.iter
    (fun (wname, bcounters) ->
       match List.assoc_opt wname cur with
       | None ->
         incr checks;
         incr regressions;
         Buffer.add_string buf
           (Printf.sprintf "REGRESSION %-28s missing from current run\n"
              wname)
       | Some ccounters ->
         let bfields =
           match bcounters with J.Obj f -> f | _ -> []
         in
         List.iter
           (fun (key, bval) ->
              incr checks;
              let cval = J.member key ccounters in
              if cval <> Some bval then begin
                incr regressions;
                Buffer.add_string buf
                  (Printf.sprintf "REGRESSION %-28s %-18s %s -> %s\n" wname
                     key (scalar_to_string bval)
                     (match cval with
                      | Some v -> scalar_to_string v
                      | None -> "missing"))
              end)
           bfields)
    base

(* Host wall times: noisy, flagged only past the threshold ratio. *)
let compare_walls ~buf ~checks ~regressions ~threshold base cur =
  List.iter
    (fun (kernel, bval) ->
       match (J.to_float bval, Option.bind (List.assoc_opt kernel cur)
                                 J.to_float) with
       | Some b, Some c when b > 0. ->
         incr checks;
         let ratio = c /. b in
         if ratio > 1. +. threshold then begin
           incr regressions;
           Buffer.add_string buf
             (Printf.sprintf
                "REGRESSION %-28s wall %.0f -> %.0f ns (%.2fx > %.2fx)\n"
                kernel b c ratio (1. +. threshold))
         end
       | _ -> ())
    base

(* Incremental-campaign entry: its deterministic fields (task count,
   decouple verdict, shared prefix cycles, table identity) must match
   the baseline exactly — they derive from the virtual-cycle model, so
   this holds on any host.  The measured speedup must clear the floor
   the run itself carries; like wall times it is skipped under
   [cycles_only], where host timing is meaningless. *)
let incremental_det_fields =
  [ "tasks"; "decoupled"; "suffixes_replayed"; "prefix_cycles";
    "tables_identical" ]

let compare_incremental ~buf ~checks ~regressions ~cycles_only base cur =
  match (base, cur) with
  | None, _ -> ()  (* baseline predates the incremental entry *)
  | Some _, None ->
    incr checks;
    incr regressions;
    Buffer.add_string buf
      "REGRESSION incremental                  missing from current run\n"
  | Some bf, Some cf ->
    List.iter
      (fun key ->
         match List.assoc_opt key bf with
         | None -> ()
         | Some bval ->
           incr checks;
           let cval = List.assoc_opt key cf in
           if cval <> Some bval then begin
             incr regressions;
             Buffer.add_string buf
               (Printf.sprintf "REGRESSION %-28s %-18s %s -> %s\n"
                  "incremental" key (scalar_to_string bval)
                  (match cval with
                   | Some v -> scalar_to_string v
                   | None -> "missing"))
           end)
      incremental_det_fields;
    if not cycles_only then begin
      incr checks;
      let floor =
        Option.value
          (Option.bind (List.assoc_opt "speedup_floor" cf) J.to_float)
          ~default:1.5
      in
      match Option.bind (List.assoc_opt "speedup" cf) J.to_float with
      | Some s when s >= floor -> ()
      | Some s ->
        incr regressions;
        Buffer.add_string buf
          (Printf.sprintf
             "REGRESSION %-28s speedup %.2fx below the %.2fx floor\n"
             "incremental" s floor)
      | None ->
        incr regressions;
        Buffer.add_string buf
          "REGRESSION incremental                  speedup missing\n"
    end

let compare ?(threshold = 0.3) ?(cycles_only = false) ~baseline ~current () =
  let* () = check_schema baseline in
  let* () = check_schema current in
  let* bcounters = obj_field "engine_counters" baseline in
  let* ccounters = obj_field "engine_counters" current in
  let buf = Buffer.create 512 in
  let checks = ref 0 and regressions = ref 0 in
  compare_counters ~buf ~checks ~regressions bcounters ccounters;
  let section name j =
    match J.member name j with Some (J.Obj f) -> Some f | _ -> None
  in
  compare_incremental ~buf ~checks ~regressions ~cycles_only
    (section "incremental" baseline)
    (section "incremental" current);
  let* () =
    if cycles_only then Ok ()
    else
      let* bwalls = obj_field "wall_times" baseline in
      let* cwalls = obj_field "wall_times" current in
      compare_walls ~buf ~checks ~regressions ~threshold bwalls cwalls;
      Ok ()
  in
  Buffer.add_string buf
    (Printf.sprintf "bench-diff: %d check%s, %d regression%s%s\n" !checks
       (if !checks = 1 then "" else "s")
       !regressions
       (if !regressions = 1 then "" else "s")
       (if cycles_only then " (cycles only)" else ""));
  Ok
    { bd_regressions = !regressions;
      bd_checks = !checks;
      bd_report = Buffer.contents buf }

(* Build a current-run tree that must trip the gate: slow one kernel's
   wall time 10x and bump one workload's wall_cycles counter. *)
let doctor j =
  match j with
  | J.Obj top ->
    let doctored_wall = ref false and doctored_cycles = ref false in
    let doctor_walls walls =
      List.map
        (fun (k, v) ->
           match v with
           | J.Float f when (not !doctored_wall) && f > 0. ->
             doctored_wall := true;
             (k, J.Float (f *. 10.))
           | _ -> (k, v))
        walls
    in
    let doctor_counters counters =
      List.map
        (fun (wname, wval) ->
           match wval with
           | J.Obj fields when not !doctored_cycles ->
             ( wname,
               J.Obj
                 (List.map
                    (fun (key, v) ->
                       match (key, v) with
                       | "wall_cycles", J.Int n when not !doctored_cycles ->
                         doctored_cycles := true;
                         (key, J.Int (n + 1))
                       | _ -> (key, v))
                    fields) )
           | _ -> (wname, wval))
        counters
    in
    let top' =
      List.map
        (fun (k, v) ->
           match (k, v) with
           | "wall_times", J.Obj walls -> (k, J.Obj (doctor_walls walls))
           | "engine_counters", J.Obj counters ->
             (k, J.Obj (doctor_counters counters))
           | _ -> (k, v))
        top
    in
    if not !doctored_cycles then
      Error "bench json: no wall_cycles counter to doctor"
    else Ok (J.Obj top')
  | _ -> Error "bench json: not an object"
