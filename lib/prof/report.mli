(** Profile report rendering: ranked text tables, a stable JSON form,
    folded stacks for flamegraph tooling, and report-to-report diffs.

    A dual run produces one {!Ldx_vm.Profile.snapshot} per side; this
    module pairs them with the run's virtual wall ([max] of the two
    side clocks) and renders the pair.  Everything here is derived from
    the deterministic virtual-cycle model, so reports are
    bit-reproducible for a given program, input and seed. *)

type dual = {
  d_master : Ldx_vm.Profile.snapshot;
  d_slave : Ldx_vm.Profile.snapshot;
  d_wall : int;  (** [max] of the two side totals: virtual wall time *)
}

(** Snapshot both sides of a finished run.  [d_wall] is the max of the
    two [s_total_cycles]; a well-formed run has it equal to the
    engine's [wall_cycles] (pinned by tests). *)
val of_profiles :
  master:Ldx_vm.Profile.t -> slave:Ldx_vm.Profile.t -> dual

(** Ranked text report: per side, opcodes by descending cycles with
    steps and share of the side clock, the top blocks, the per-syscall
    breakdown and the engine coupling categories.  [blocks] bounds the
    block table (default 20). *)
val render : ?blocks:int -> dual -> string

(** Stable JSON encoding, schema ["ldx-prof/1"]. *)
val to_json : dual -> Ldx_obs.Json.t

(** Inverse of {!to_json}; rejects other schemas. *)
val of_json : Ldx_obs.Json.t -> (dual, string) result

(** Folded-stack lines ([side;frame;leaf cycles], one per line) for
    [flamegraph.pl] and compatible tooling: one line per CFG block
    ([master;f;b3 120]) and one per engine coupling category
    ([slave;engine;share_copy 24]).  Line totals sum to the two side
    clocks. *)
val folded : dual -> string

(** Text diff of two reports (baseline first): wall delta, per-side
    per-opcode and per-block cycle deltas, zero-delta rows dropped. *)
val diff : dual -> dual -> string
