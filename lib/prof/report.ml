module Profile = Ldx_vm.Profile
module J = Ldx_obs.Json

type dual = {
  d_master : Profile.snapshot;
  d_slave : Profile.snapshot;
  d_wall : int;
}

let of_profiles ~master ~slave =
  let m = Profile.snapshot master and s = Profile.snapshot slave in
  { d_master = m;
    d_slave = s;
    d_wall = max m.Profile.s_total_cycles s.Profile.s_total_cycles }

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)

let pct total v =
  if total <= 0 then 0. else 100. *. float_of_int v /. float_of_int total

let render_rows buf ~total ~title (rows : Profile.row list) =
  if rows <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  %-22s %12s %12s %7s\n" title "steps" "cycles" "%");
    List.iter
      (fun (r : Profile.row) ->
         Buffer.add_string buf
           (Printf.sprintf "  %-22s %12d %12d %6.2f%%\n" r.Profile.r_name
              r.Profile.r_steps r.Profile.r_cycles
              (pct total r.Profile.r_cycles)))
      rows;
    Buffer.add_char buf '\n'
  end

let render_side buf name (s : Profile.snapshot) ~blocks =
  Buffer.add_string buf
    (Printf.sprintf "-- %s: %d steps, %d cycles --\n" name
       s.Profile.s_total_steps s.Profile.s_total_cycles);
  let total = s.Profile.s_total_cycles in
  let by_cycles (a : Profile.row) (b : Profile.row) =
    compare b.Profile.r_cycles a.Profile.r_cycles
  in
  render_rows buf ~total ~title:"opcode"
    (List.sort by_cycles s.Profile.s_ops);
  let ranked_blocks =
    List.sort
      (fun (a : Profile.block_row) b ->
         compare b.Profile.b_cycles a.Profile.b_cycles)
      s.Profile.s_blocks
  in
  let shown = List.filteri (fun i _ -> i < blocks) ranked_blocks in
  if shown <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  %-22s %12s %12s %7s\n" "block" "steps" "cycles" "%");
    List.iter
      (fun (b : Profile.block_row) ->
         Buffer.add_string buf
           (Printf.sprintf "  %-22s %12d %12d %6.2f%%\n"
              (Printf.sprintf "%s:b%d" b.Profile.b_func b.Profile.b_bid)
              b.Profile.b_steps b.Profile.b_cycles
              (pct total b.Profile.b_cycles)))
      shown;
    let omitted = List.length ranked_blocks - List.length shown in
    if omitted > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  ... %d more blocks\n" omitted);
    Buffer.add_char buf '\n'
  end;
  render_rows buf ~total ~title:"syscall" s.Profile.s_syscalls;
  render_rows buf ~total ~title:"engine" s.Profile.s_engine

let render ?(blocks = 20) d =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "=== ldx profile: wall %d cycles ===\n\n" d.d_wall);
  render_side buf "master" d.d_master ~blocks;
  render_side buf "slave" d.d_slave ~blocks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let schema = "ldx-prof/1"

let json_rows rows =
  J.Arr
    (List.map
       (fun (r : Profile.row) ->
          J.Obj
            [ ("name", J.Str r.Profile.r_name);
              ("steps", J.Int r.Profile.r_steps);
              ("cycles", J.Int r.Profile.r_cycles) ])
       rows)

let json_side (s : Profile.snapshot) =
  J.Obj
    [ ("total_steps", J.Int s.Profile.s_total_steps);
      ("total_cycles", J.Int s.Profile.s_total_cycles);
      ("ops", json_rows s.Profile.s_ops);
      ( "blocks",
        J.Arr
          (List.map
             (fun (b : Profile.block_row) ->
                J.Obj
                  [ ("func", J.Str b.Profile.b_func);
                    ("bid", J.Int b.Profile.b_bid);
                    ("steps", J.Int b.Profile.b_steps);
                    ("cycles", J.Int b.Profile.b_cycles) ])
             s.Profile.s_blocks) );
      ("syscalls", json_rows s.Profile.s_syscalls);
      ("engine", json_rows s.Profile.s_engine) ]

let to_json d =
  J.Obj
    [ ("schema", J.Str schema);
      ("wall_cycles", J.Int d.d_wall);
      ( "sides",
        J.Obj
          [ ("master", json_side d.d_master);
            ("slave", json_side d.d_slave) ] ) ]

let ( let* ) r f = Result.bind r f

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "profile json: missing %S" name)

let int_field name j =
  let* v = field name j in
  match J.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "profile json: %S is not an int" name)

let str_field name j =
  let* v = field name j in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "profile json: %S is not a string" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let arr_field name j =
  let* v = field name j in
  match v with
  | J.Arr l -> Ok l
  | _ -> Error (Printf.sprintf "profile json: %S is not an array" name)

let row_of_json j =
  let* r_name = str_field "name" j in
  let* r_steps = int_field "steps" j in
  let* r_cycles = int_field "cycles" j in
  Ok { Profile.r_name; r_steps; r_cycles }

let block_of_json j =
  let* b_func = str_field "func" j in
  let* b_bid = int_field "bid" j in
  let* b_steps = int_field "steps" j in
  let* b_cycles = int_field "cycles" j in
  Ok { Profile.b_func; b_bid; b_steps; b_cycles }

let side_of_json j =
  let* s_total_steps = int_field "total_steps" j in
  let* s_total_cycles = int_field "total_cycles" j in
  let* ops = arr_field "ops" j in
  let* s_ops = map_result row_of_json ops in
  let* blocks = arr_field "blocks" j in
  let* s_blocks = map_result block_of_json blocks in
  let* syscalls = arr_field "syscalls" j in
  let* s_syscalls = map_result row_of_json syscalls in
  let* engine = arr_field "engine" j in
  let* s_engine = map_result row_of_json engine in
  Ok
    { Profile.s_ops;
      s_blocks;
      s_syscalls;
      s_engine;
      s_total_steps;
      s_total_cycles }

let of_json j =
  let* s = str_field "schema" j in
  if s <> schema then
    Error (Printf.sprintf "profile json: schema %S, expected %S" s schema)
  else
    let* d_wall = int_field "wall_cycles" j in
    let* sides = field "sides" j in
    let* m = field "master" sides in
    let* d_master = side_of_json m in
    let* sl = field "slave" sides in
    let* d_slave = side_of_json sl in
    Ok { d_master; d_slave; d_wall }

(* ------------------------------------------------------------------ *)
(* Folded stacks                                                       *)

let folded_side buf name (s : Profile.snapshot) =
  List.iter
    (fun (b : Profile.block_row) ->
       Buffer.add_string buf
         (Printf.sprintf "%s;%s;b%d %d\n" name b.Profile.b_func
            b.Profile.b_bid b.Profile.b_cycles))
    s.Profile.s_blocks;
  List.iter
    (fun (r : Profile.row) ->
       Buffer.add_string buf
         (Printf.sprintf "%s;engine;%s %d\n" name r.Profile.r_name
            r.Profile.r_cycles))
    s.Profile.s_engine

let folded d =
  let buf = Buffer.create 1024 in
  folded_side buf "master" d.d_master;
  folded_side buf "slave" d.d_slave;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)

let assoc_rows rows =
  List.map (fun (r : Profile.row) -> (r.Profile.r_name, r.Profile.r_cycles))
    rows

let assoc_blocks blocks =
  List.map
    (fun (b : Profile.block_row) ->
       (Printf.sprintf "%s:b%d" b.Profile.b_func b.Profile.b_bid,
        b.Profile.b_cycles))
    blocks

let diff_assoc buf ~title base cur =
  let keys =
    List.sort_uniq compare (List.map fst base @ List.map fst cur)
  in
  let deltas =
    List.filter_map
      (fun k ->
         let v l = Option.value ~default:0 (List.assoc_opt k l) in
         let d = v cur - v base in
         if d = 0 then None else Some (k, v base, v cur, d))
      keys
  in
  if deltas <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  %-22s %12s %12s %12s\n" title "base" "cur" "delta");
    List.iter
      (fun (k, b, c, d) ->
         Buffer.add_string buf
           (Printf.sprintf "  %-22s %12d %12d %+12d\n" k b c d))
      (List.sort (fun (_, _, _, a) (_, _, _, b) -> compare (abs b) (abs a))
         deltas);
    Buffer.add_char buf '\n'
  end

let diff_side buf name (base : Profile.snapshot) (cur : Profile.snapshot) =
  Buffer.add_string buf
    (Printf.sprintf "-- %s: cycles %d -> %d (%+d) --\n" name
       base.Profile.s_total_cycles cur.Profile.s_total_cycles
       (cur.Profile.s_total_cycles - base.Profile.s_total_cycles));
  diff_assoc buf ~title:"opcode"
    (assoc_rows base.Profile.s_ops) (assoc_rows cur.Profile.s_ops);
  diff_assoc buf ~title:"block"
    (assoc_blocks base.Profile.s_blocks) (assoc_blocks cur.Profile.s_blocks);
  diff_assoc buf ~title:"syscall"
    (assoc_rows base.Profile.s_syscalls) (assoc_rows cur.Profile.s_syscalls);
  diff_assoc buf ~title:"engine"
    (assoc_rows base.Profile.s_engine) (assoc_rows cur.Profile.s_engine)

let diff base cur =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "=== profile diff: wall %d -> %d (%+d) ===\n\n"
       base.d_wall cur.d_wall (cur.d_wall - base.d_wall));
  diff_side buf "master" base.d_master cur.d_master;
  diff_side buf "slave" base.d_slave cur.d_slave;
  Buffer.contents buf
