(** Bench-to-bench regression comparison over [BENCH_results.json]
    trees (schema ["ldx-bench/1"]).

    Two classes of signal with different tolerances:

    - [engine_counters] is derived entirely from the deterministic
      virtual-cycle model, so it is compared with {e zero tolerance}:
      any per-workload counter (leak verdict, syscall counts, copies,
      [wall_cycles], ...) that differs between baseline and current is
      a regression.  A workload present in the baseline but missing
      from the current run is also a regression.
    - [wall_times] is host wall time and noisy; a kernel regresses only
      when [current > baseline * (1 + threshold)].  With [cycles_only]
      wall times are skipped entirely — the mode CI uses, where shared
      runners make wall time meaningless. *)

type outcome = {
  bd_regressions : int;  (** 0 = gate passes *)
  bd_checks : int;       (** comparisons performed *)
  bd_report : string;    (** human-readable summary, one line per check
                             that regressed plus a totals line *)
}

(** [compare ~threshold ~cycles_only ~baseline ~current].  [threshold]
    defaults to [0.3] (30% wall-time slack); [cycles_only] defaults to
    [false]. *)
val compare :
  ?threshold:float ->
  ?cycles_only:bool ->
  baseline:Ldx_obs.Json.t ->
  current:Ldx_obs.Json.t ->
  unit ->
  (outcome, string) result

(** Self-test helper: a copy of the tree with one wall-time kernel
    slowed far past any threshold and one workload's [wall_cycles]
    counter bumped — {!compare} against the original must flag both.
    [Error] if the tree has no wall time or no counter to doctor. *)
val doctor : Ldx_obs.Json.t -> (Ldx_obs.Json.t, string) result
