(* Flat bytecode: the execution form of the IR.

   [compile] lowers an {!Ir.program} once into, per function, a single
   flat instruction array with
   - integer opcodes (ids 0..11 deliberately equal the VM profile's
     dense opcode ids, so dispatch and attribution share one numbering),
   - locals resolved to integer register slots (params first, then
     first-use order; reads of a never-written slot are detected at run
     time through a sentinel, preserving the tree walker's "undefined
     variable" traps),
   - jump targets resolved to instruction indexes (blocks are
     concatenated in bid order, each ending with its explicit
     terminator instruction),
   - direct calls resolved to function indexes, with statically-known
     failures (unknown callee, arity mismatch) lowered to dedicated
     trap opcodes so the *runtime* error order and messages stay
     identical to the tree walker's,
   - every instruction carrying its origin block id, which keeps the
     profile's [prof_base + bid] block-attribution contract intact.

   The constant type is a parameter ('v) injected through {!consts}:
   the VM instantiates it with runtime values, the tainting baselines
   with shadow values, so both engines share this one lowering. *)

module Ast = Ldx_lang.Ast

type 'v fexpr =
  | Const of 'v
  | Reg of int
  | Unop of Ast.unop * 'v fexpr
  | Binop of Ast.binop * 'v fexpr * 'v fexpr
  | Index of 'v fexpr * 'v fexpr
  | Builtin of string * 'v fexpr array
  (* Specialized shapes for the dominant leaf patterns (reg op reg,
     reg op const, const op reg, arr[reg]).  Produced by the smart
     constructors in [cexpr]; they save one or two recursive
     evaluations per node on the interpreter hot path and are
     semantically identical to the general forms they replace
     (including operand evaluation order for traps). *)
  | BinopRR of Ast.binop * int * int
  | BinopRC of Ast.binop * int * 'v
  | BinopCR of Ast.binop * 'v * int
  | IndexRR of int * int

(* Opcodes.  0..11 match Ldx_vm.Profile's dense opcode ids (asserted at
   VM module init); 12..13 are synthetic compile-time-diagnosed call
   failures, charged as op_call. *)
let op_assign = 0
let op_store = 1
let op_call = 2
let op_call_indirect = 3
let op_syscall = 4
let op_cnt_add = 5
let op_loop_enter = 6
let op_loop_back = 7
let op_loop_exit = 8
let op_jump = 9
let op_branch = 10
let op_ret = 11
let op_call_arity = 12
let op_call_missing = 13
let n_ops = 14

(* One flat instruction.  A fat record rather than a variant so that
   dispatch is a single int match and operand access is field loads;
   field meaning per opcode:
   - assign: dst, e1
   - store: a = array slot, name = array var (trap messages), e1 =
     index, e2 = value
   - call: a = callee function index, args, dst, fresh
   - call_indirect: e1 = fptr, args, dst, b = site (always fresh)
   - syscall: name = syscall, args, dst, dst_name, b = site
   - cnt_add: a = k
   - loop_enter: a = loop id
   - loop_back: a = loop id, b = dec
   - loop_exit: pops, b = bump
   - jump: a = target pc
   - branch: e1 = cond, a = then pc, b = else pc
   - ret: e1 (Const unit when the IR returns nothing)
   - call_arity: name = callee, a = #args, b = #params, args, dst
   - call_missing: name = callee, args, dst *)
type 'v finstr = {
  op : int;
  i_bid : int;             (* origin block: profile attribution target *)
  dst : int;               (* destination slot; -1 = none *)
  dst_name : string option;  (* syscall only: the driver-facing dst *)
  a : int;
  b : int;
  e1 : 'v fexpr;
  e2 : 'v fexpr;
  args : 'v fexpr array;
  name : string;
  pops : int array;
  fresh : bool;
}

type 'v func = {
  f_ir : Ir.func;
  code : 'v finstr array;
  block_pc : int array;    (* bid -> pc of the block's first instruction *)
  entry_pc : int;
  nslots : int;
  nparams : int;           (* params occupy slots 0..nparams-1, in order *)
  slot_names : string array;      (* slot -> source name (trap messages) *)
  slot_of : (string, int) Hashtbl.t;  (* name -> slot (tree mode, setjmp) *)
  instr_runs : int array;
  (* [instr_runs.(pc)] is the length of the maximal run of consecutive
     pure-bookkeeping instrumentation instructions (cnt_add, loop_enter,
     loop_exit — NOT loop_back, which is a barrier) starting at [pc];
     0 when [code.(pc)] is any other opcode.  Runs never cross block
     boundaries (every block ends in a non-instrumentation terminator),
     so all instructions of a run share [i_bid].  The VM's batched fast
     path uses this to retire a whole run in one dispatch. *)
}

type 'v program = {
  p_ir : Ir.program;
  funcs : 'v func array;   (* aligned with [p_ir.funcs] *)
  fidx : (string, int) Hashtbl.t;  (* fname -> index, first occurrence *)
}

(* Constant injections: how source literals become runtime values. *)
type 'v consts = {
  c_unit : 'v;
  c_int : int -> 'v;
  c_str : string -> 'v;
  c_fun : string -> 'v;
}

(* ------------------------------------------------------------------ *)
(* Slot assignment: params first (duplicates get fresh positional
   slots, the name maps to the last one — matching the tree walker's
   Hashtbl.replace binding order), then every other name in first-use
   order over blocks/instrs.  Deterministic, so slot numbering is
   stable across compiles. *)

let collect_slots (f : Ir.func) : (string, int) Hashtbl.t * string array =
  let slot_of = Hashtbl.create 32 in
  let rev_names = ref [] in
  let n = ref 0 in
  let fresh name =
    let s = !n in
    incr n;
    rev_names := name :: !rev_names;
    s
  in
  List.iter (fun p -> Hashtbl.replace slot_of p (fresh p)) f.Ir.params;
  let add name =
    if not (Hashtbl.mem slot_of name) then
      Hashtbl.replace slot_of name (fresh name)
  in
  let add_opt = function Some d -> add d | None -> () in
  let rec walk (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Str _ | Ast.Funref _ -> ()
    | Ast.Var x -> add x
    | Ast.Unop (_, a) -> walk a
    | Ast.Binop (_, a, b) -> walk a; walk b
    | Ast.Index (a, i) -> walk a; walk i
    | Ast.Call (_, args) -> List.iter walk args
  in
  Array.iter
    (fun (b : Ir.block) ->
       Array.iter
         (fun (ins : Ir.instr) ->
            match ins with
            | Ir.Assign (x, e) -> walk e; add x
            | Ir.Store (a, i, e) -> add a; walk i; walk e
            | Ir.Call { dst; args; _ } -> List.iter walk args; add_opt dst
            | Ir.Call_indirect { dst; fptr; args; _ } ->
              walk fptr; List.iter walk args; add_opt dst
            | Ir.Syscall { dst; args; _ } -> List.iter walk args; add_opt dst
            | Ir.Cnt_add _ | Ir.Loop_enter _ | Ir.Loop_back _
            | Ir.Loop_exit _ -> ())
         b.Ir.instrs;
       match b.Ir.term with
       | Ir.Branch (c, _, _) -> walk c
       | Ir.Ret (Some e) -> walk e
       | Ir.Jump _ | Ir.Ret None -> ())
    f.Ir.blocks;
  (slot_of, Array.of_list (List.rev !rev_names))

(* ------------------------------------------------------------------ *)
(* Code emission.                                                      *)

let compile_func (cs : 'v consts) (prog : Ir.program)
    (fidx : (string, int) Hashtbl.t) (slot_of : (string, int) Hashtbl.t)
    (slot_names : string array) (f : Ir.func) : 'v func =
  let nil = Const cs.c_unit in
  let mk ?(dst = -1) ?(dst_name = None) ?(a = 0) ?(b = 0) ?(e1 = nil)
      ?(e2 = nil) ?(args = [||]) ?(name = "") ?(pops = [||])
      ?(fresh = false) op i_bid =
    { op; i_bid; dst; dst_name; a; b; e1; e2; args; name; pops; fresh }
  in
  let rec cexpr (e : Ast.expr) : 'v fexpr =
    match e with
    | Ast.Int n -> Const (cs.c_int n)
    | Ast.Str s -> Const (cs.c_str s)
    | Ast.Funref g -> Const (cs.c_fun g)
    | Ast.Var x -> Reg (Hashtbl.find slot_of x)
    | Ast.Unop (op, a) -> Unop (op, cexpr a)
    | Ast.Binop (op, a, b) ->
      (match (cexpr a, cexpr b) with
       | Reg i, Reg j -> BinopRR (op, i, j)
       | Reg i, Const v -> BinopRC (op, i, v)
       | Const v, Reg j -> BinopCR (op, v, j)
       | fa, fb -> Binop (op, fa, fb))
    | Ast.Index (a, i) ->
      (match (cexpr a, cexpr i) with
       | Reg x, Reg y -> IndexRR (x, y)
       | fa, fi -> Index (fa, fi))
    | Ast.Call (name, args) ->
      Builtin (name, Array.of_list (List.map cexpr args))
  in
  let cargs args = Array.of_list (List.map cexpr args) in
  let slot x = Hashtbl.find slot_of x in
  let slot_opt = function Some d -> slot d | None -> -1 in
  let nb = Array.length f.Ir.blocks in
  let block_pc = Array.make nb 0 in
  let len = ref 0 in
  Array.iteri
    (fun bi (b : Ir.block) ->
       block_pc.(bi) <- !len;
       len := !len + Array.length b.Ir.instrs + 1)
    f.Ir.blocks;
  let code = Array.make (max 1 !len) (mk op_ret 0) in
  Array.iteri
    (fun bi (b : Ir.block) ->
       let pc = ref block_pc.(bi) in
       let emit ins = code.(!pc) <- ins; incr pc in
       Array.iter
         (fun (ins : Ir.instr) ->
            match ins with
            | Ir.Assign (x, e) ->
              emit (mk op_assign bi ~dst:(slot x) ~e1:(cexpr e))
            | Ir.Store (a, i, e) ->
              emit
                (mk op_store bi ~a:(slot a) ~name:a ~e1:(cexpr i)
                   ~e2:(cexpr e))
            | Ir.Call { dst; callee; args; fresh_frame } ->
              let args = cargs args in
              let dst = slot_opt dst in
              (match Hashtbl.find_opt fidx callee with
               | None ->
                 emit (mk op_call_missing bi ~name:callee ~args ~dst)
               | Some fi ->
                 let nparams =
                   List.length prog.Ir.funcs.(fi).Ir.params
                 in
                 let nargs = Array.length args in
                 if nargs <> nparams then
                   emit
                     (mk op_call_arity bi ~name:callee ~a:nargs ~b:nparams
                        ~args ~dst)
                 else
                   emit (mk op_call bi ~a:fi ~args ~dst ~fresh:fresh_frame))
            | Ir.Call_indirect { dst; fptr; args; site } ->
              emit
                (mk op_call_indirect bi ~e1:(cexpr fptr) ~args:(cargs args)
                   ~dst:(slot_opt dst) ~b:site)
            | Ir.Syscall { dst; sys; args; site } ->
              emit
                (mk op_syscall bi ~name:sys ~args:(cargs args)
                   ~dst:(slot_opt dst) ~dst_name:dst ~b:site)
            | Ir.Cnt_add k -> emit (mk op_cnt_add bi ~a:k)
            | Ir.Loop_enter { loop } -> emit (mk op_loop_enter bi ~a:loop)
            | Ir.Loop_back { loop; dec } ->
              emit (mk op_loop_back bi ~a:loop ~b:dec)
            | Ir.Loop_exit { pops; bump } ->
              emit
                (mk op_loop_exit bi ~pops:(Array.of_list pops) ~b:bump))
         b.Ir.instrs;
       match b.Ir.term with
       | Ir.Jump l -> emit (mk op_jump bi ~a:block_pc.(l))
       | Ir.Branch (c, bt, bf) ->
         emit
           (mk op_branch bi ~e1:(cexpr c) ~a:block_pc.(bt) ~b:block_pc.(bf))
       | Ir.Ret None -> emit (mk op_ret bi)
       | Ir.Ret (Some e) -> emit (mk op_ret bi ~e1:(cexpr e)))
    f.Ir.blocks;
  let instr_runs = Array.make (Array.length code) 0 in
  for pc = Array.length code - 1 downto 0 do
    match code.(pc).op with
    | 5 (* cnt_add *) | 6 (* loop_enter *) | 8 (* loop_exit *) ->
      instr_runs.(pc) <-
        1 + (if pc + 1 < Array.length code then instr_runs.(pc + 1) else 0)
    | _ -> ()
  done;
  { f_ir = f;
    code;
    block_pc;
    entry_pc = block_pc.(f.Ir.entry);
    nslots = Array.length slot_names;
    nparams = List.length f.Ir.params;
    slot_names;
    slot_of;
    instr_runs }

let compile (cs : 'v consts) (prog : Ir.program) : 'v program =
  let nf = Array.length prog.Ir.funcs in
  let fidx = Hashtbl.create (2 * nf) in
  Array.iteri
    (fun i (f : Ir.func) ->
       if not (Hashtbl.mem fidx f.Ir.fname) then
         Hashtbl.replace fidx f.Ir.fname i)
    prog.Ir.funcs;
  let funcs =
    Array.map
      (fun f ->
         let slot_of, slot_names = collect_slots f in
         compile_func cs prog fidx slot_of slot_names f)
      prog.Ir.funcs
  in
  { p_ir = prog; funcs; fidx }

(* ------------------------------------------------------------------ *)
(* Debug printing (opcode table mirrors DESIGN.md).                    *)

let op_names =
  [| "assign"; "store"; "call"; "call_indirect"; "syscall"; "cnt_add";
     "loop_enter"; "loop_back"; "loop_exit"; "jump"; "branch"; "ret";
     "call_arity"; "call_missing" |]

let func_to_string (fl : 'v func) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "flat %s: %d instrs, %d slots (%d params)\n"
       fl.f_ir.Ir.fname (Array.length fl.code) fl.nslots fl.nparams);
  Array.iteri
    (fun pc (ins : 'v finstr) ->
       Buffer.add_string buf
         (Printf.sprintf "  %3d: b%-2d %-13s dst=%d a=%d b=%d%s\n" pc
            ins.i_bid op_names.(ins.op) ins.dst ins.a ins.b
            (if ins.name = "" then "" else " " ^ ins.name)))
    fl.code;
  Buffer.contents buf
