(* Durable journaled storage.  See the interface for the format
   grammar and the checkpoint/append durability discipline. *)

let header = "ldx-store/1"
let header_v2 = "ldx-store/2"

(* ------------------------------------------------------------------ *)
(* Checksums and fingerprints.                                         *)

(* FNV-1a 64-bit: tiny, dependency-free, and plenty for torn-write
   detection — the threat model is a half-written line after a crash,
   not an adversary forging collisions. *)
let fnv64 (s : string) : int64 =
  let offset_basis = 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (fnv64 s)

(* Length-prefixing keeps part boundaries significant, so moving bytes
   between adjacent parts always changes the digest. *)
let fingerprint (parts : string list) : string =
  hash_hex
    (String.concat ""
       (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts))

let escape = String.escaped

let unescape (s : string) : (string, string) result =
  match Scanf.unescaped s with
  | v -> Ok v
  | exception Scanf.Scan_failure m -> Error ("bad escape: " ^ m)
  | exception Failure m -> Error ("bad escape: " ^ m)

(* ------------------------------------------------------------------ *)
(* Records.                                                            *)

type manifest = {
  fingerprint : string;
  meta : (string * string) list;
  tasks : string list;
}

(* One checksummed line: "<tag> <crc> <rest>" with crc = fnv64(rest).
   [rest] must be newline-free (payloads are escaped by the caller of
   [record]). *)
let record tag rest = Printf.sprintf "%c %s %s\n" tag (hash_hex rest) rest

let outcome_line index payload =
  record 'o' (Printf.sprintf "%d %s" index (escape payload))

(* Journal entries.  Owners ride unescaped inside space-separated
   fields, so they must be flat tokens — they are machine-generated
   worker identities ("w0-12345"), not user text. *)
type entry =
  | Outcome of { index : int; payload : string }
  | Lease of { index : int; owner : string; epoch : int; deadline_us : int }
  | Heartbeat of { owner : string; deadline_us : int }
  | Release of { index : int; owner : string; epoch : int }

let check_owner owner =
  if owner = ""
     || String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') owner
  then invalid_arg ("Store: bad owner token " ^ String.escaped owner)

let entry_line = function
  | Outcome { index; payload } -> outcome_line index payload
  | Lease { index; owner; epoch; deadline_us } ->
    check_owner owner;
    record 'l' (Printf.sprintf "%d %s %d %d" index owner epoch deadline_us)
  | Heartbeat { owner; deadline_us } ->
    check_owner owner;
    record 'h' (Printf.sprintf "%s %d" owner deadline_us)
  | Release { index; owner; epoch } ->
    check_owner owner;
    record 'r' (Printf.sprintf "%d %s %d" index owner epoch)

let manifest_lines ~version (m : manifest) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    ("# " ^ (if version >= 2 then header_v2 else header) ^ "\n");
  Buffer.add_string buf ("f " ^ m.fingerprint ^ "\n");
  List.iter
    (fun (k, v) ->
       if String.contains k ' ' then
         invalid_arg "Store: manifest keys must not contain spaces";
       Buffer.add_string buf (record 'm' (k ^ " " ^ escape v)))
    m.meta;
  List.iteri
    (fun i label ->
       Buffer.add_string buf (record 't' (string_of_int i ^ " " ^ escape label)))
    m.tasks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)

type t = {
  path : string;
  version : int;
  sync : bool;
  mutable oc : out_channel option;
}

let fsync_oc oc =
  (* flush first: fsync pushes the KERNEL's buffers to the platter, the
     channel's userspace buffer is on this side of that boundary *)
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let checkpoint_gen ~path ~version ~sync (m : manifest) (lines : string list) : t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      output_string oc (manifest_lines ~version m);
      List.iter (output_string oc) lines;
      (* the rename publishes whatever made it to disk; flush first so
         "whatever" is the whole checkpoint *)
      flush oc;
      if sync then fsync_oc oc);
  Sys.rename tmp path;
  (* with [sync] the rename itself must survive power loss too: fsync
     the containing directory (best-effort — some filesystems refuse
     fsync on a directory fd) *)
  if sync then begin
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
    | exception Unix.Unix_error _ -> ()
  end;
  { path; version; sync;
    oc = Some (Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path) }

let checkpoint ~path ?(sync = false) (m : manifest)
    (outcomes : (int * string) list) : t =
  checkpoint_gen ~path ~version:1 ~sync m
    (List.map (fun (i, payload) -> outcome_line i payload) outcomes)

let checkpoint_entries ~path ?(sync = false) (m : manifest)
    (entries : entry list) : t =
  checkpoint_gen ~path ~version:2 ~sync m (List.map entry_line entries)

let append_line (t : t) (line : string) : unit =
  match t.oc with
  | None -> invalid_arg "Store.append: store is closed"
  | Some oc ->
    output_string oc line;
    (* flush per record: a crash after [append] returns must find the
       record on the other side of the channel buffer *)
    flush oc;
    if t.sync then fsync_oc oc

let append (t : t) (index : int) (payload : string) : unit =
  append_line t (outcome_line index payload)

let append_entry (t : t) (e : entry) : unit =
  (match e with
   | Outcome _ -> ()
   | Lease _ | Heartbeat _ | Release _ ->
     if t.version < 2 then
       invalid_arg "Store.append_entry: lease records need a v2 store");
  append_line t (entry_line e)

let path_of t = t.path

let close (t : t) : unit =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    Out_channel.close oc

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)

type loaded = {
  l_manifest : manifest;
  l_version : int;
  l_entries : entry list;
  l_outcomes : (int * string) list;
  l_torn : int;
}

let split_once ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* "<tag> <crc> <rest>" with a matching checksum, or None. *)
let parse_record (line : string) : (char * string) option =
  if String.length line < 2 || line.[1] <> ' ' then None
  else
    match split_once ' ' (String.sub line 2 (String.length line - 2)) with
    | Some (crc, rest) when crc = hash_hex rest -> Some (line.[0], rest)
    | _ -> None

(* Decode the checksummed [rest] of a journal record; [None] = a
   malformed body under a VALID checksum, which the torn-tail rule
   treats like any other damage. *)
let parse_entry (tag : char) (rest : string) : entry option =
  let fields = String.split_on_char ' ' rest in
  match (tag, fields) with
  | 'o', index :: payload ->
    (match (int_of_string_opt index, unescape (String.concat " " payload)) with
     | Some index, Ok payload -> Some (Outcome { index; payload })
     | _ -> None)
  | 'l', [ index; owner; epoch; deadline ] ->
    (match
       (int_of_string_opt index, int_of_string_opt epoch,
        int_of_string_opt deadline)
     with
     | Some index, Some epoch, Some deadline_us when owner <> "" ->
       Some (Lease { index; owner; epoch; deadline_us })
     | _ -> None)
  | 'h', [ owner; deadline ] ->
    (match int_of_string_opt deadline with
     | Some deadline_us when owner <> "" -> Some (Heartbeat { owner; deadline_us })
     | _ -> None)
  | 'r', [ index; owner; epoch ] ->
    (match (int_of_string_opt index, int_of_string_opt epoch) with
     | Some index, Some epoch when owner <> "" ->
       Some (Release { index; owner; epoch })
     | _ -> None)
  | _ -> None

let load ~path : (loaded, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
    let lines = String.split_on_char '\n' text in
    (* a file ending in '\n' splits into a trailing "" — harmless, the
       blank-line filter below drops it; a file NOT ending in '\n' has
       its (possibly torn) final line carried as-is, and the checksum
       decides its fate *)
    let version =
      match lines with
      | first :: _ when first = "# " ^ header_v2 -> 2
      | _ -> 1
    in
    let journal_tag c = c = 'o' || (version >= 2 && (c = 'l' || c = 'h' || c = 'r')) in
    let err = ref None in
    let fingerprint = ref None in
    let meta = ref [] in
    let tasks = ref [] in       (* (index, label) *)
    let entries = ref [] in
    let torn = ref 0 in
    let in_journal = ref false in
    let fail lineno msg =
      if !err = None then
        err := Some (Printf.sprintf "%s: line %d: %s" path (lineno + 1) msg)
    in
    let int_field rest k =
      match split_once ' ' rest with
      | Some (i, v) ->
        (match (int_of_string_opt i, unescape v) with
         | Some i, Ok v -> k i v
         | _ -> None)
      | None -> None
    in
    let expected_header = "# " ^ (if version >= 2 then header_v2 else header) in
    List.iteri
      (fun lineno line ->
         if !err = None && line <> "" && (lineno > 0 || line = expected_header)
         then
           match line.[0] with
           | '#' -> ()
           | c when journal_tag c ->
             in_journal := true;
             (* the journal is where torn writes live.  v1 files have
                one writer, so a record that fails its checksum (or was
                cut short) is dropped along with everything after it — a
                tear mid-file means the file is not append-only and
                nothing downstream can be trusted.  v2 files have many
                [O_APPEND] writers, each prefixing its record with a
                newline: a peer killed mid-write(2) leaves a damaged
                record in the MIDDLE of the file while later appends are
                intact, so v2 drops bad records individually — each one
                still vouched for (or condemned) by its own checksum. *)
             if version < 2 && !torn > 0 then incr torn
             else
               (match parse_record line with
                | Some (tag, rest) ->
                  (match parse_entry tag rest with
                   | Some e -> entries := e :: !entries
                   | None -> incr torn)
                | None -> incr torn)
           | _ when !in_journal ->
             (* junk after the journal started: same torn-record
                treatment *)
             incr torn
           | 'f' ->
             (match split_once ' ' line with
              | Some ("f", fp) when !fingerprint = None ->
                fingerprint := Some fp
              | _ -> fail lineno "malformed fingerprint record")
           | 'm' ->
             (match parse_record line with
              | Some ('m', rest) ->
                (match split_once ' ' rest with
                 | Some (k, v) ->
                   (match unescape v with
                    | Ok v -> meta := (k, v) :: !meta
                    | Error e -> fail lineno e)
                 | None -> fail lineno "malformed manifest record")
              | _ -> fail lineno "manifest record failed its checksum")
           | 't' ->
             (match parse_record line with
              | Some ('t', rest) ->
                (match int_field rest (fun i v -> Some (i, v)) with
                 | Some t -> tasks := t :: !tasks
                 | None -> fail lineno "malformed task record")
              | _ -> fail lineno "task record failed its checksum")
           | _ -> fail lineno (Printf.sprintf "unknown record %S" line)
         else if !err = None && lineno = 0 && line <> expected_header then
           fail lineno
             (Printf.sprintf "expected header %S" expected_header))
      lines;
    (match (!err, !fingerprint) with
     | Some e, _ -> Error e
     | None, None -> Error (path ^ ": missing fingerprint record")
     | None, Some fp ->
       let tasks =
         (* task records carry their index so order on disk is free;
            sort back into task order *)
         List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !tasks)
         |> List.map snd
       in
       let entries = List.rev !entries in
       Ok
         { l_manifest =
             { fingerprint = fp; meta = List.rev !meta; tasks };
           l_version = version;
           l_entries = entries;
           l_outcomes =
             List.filter_map
               (function
                 | Outcome { index; payload } -> Some (index, payload)
                 | Lease _ | Heartbeat _ | Release _ -> None)
               entries;
           l_torn = !torn })
