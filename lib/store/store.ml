(* Durable journaled storage.  See the interface for the format
   grammar and the checkpoint/append durability discipline. *)

let header = "ldx-store/1"

(* ------------------------------------------------------------------ *)
(* Checksums and fingerprints.                                         *)

(* FNV-1a 64-bit: tiny, dependency-free, and plenty for torn-write
   detection — the threat model is a half-written line after a crash,
   not an adversary forging collisions. *)
let fnv64 (s : string) : int64 =
  let offset_basis = 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (fnv64 s)

(* Length-prefixing keeps part boundaries significant, so moving bytes
   between adjacent parts always changes the digest. *)
let fingerprint (parts : string list) : string =
  hash_hex
    (String.concat ""
       (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts))

let escape = String.escaped

let unescape (s : string) : (string, string) result =
  match Scanf.unescaped s with
  | v -> Ok v
  | exception Scanf.Scan_failure m -> Error ("bad escape: " ^ m)
  | exception Failure m -> Error ("bad escape: " ^ m)

(* ------------------------------------------------------------------ *)
(* Records.                                                            *)

type manifest = {
  fingerprint : string;
  meta : (string * string) list;
  tasks : string list;
}

(* One checksummed line: "<tag> <crc> <rest>" with crc = fnv64(rest).
   [rest] must be newline-free (payloads are escaped by the caller of
   [record]). *)
let record tag rest = Printf.sprintf "%c %s %s\n" tag (hash_hex rest) rest

let outcome_line index payload =
  record 'o' (Printf.sprintf "%d %s" index (escape payload))

let manifest_lines (m : manifest) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ header ^ "\n");
  Buffer.add_string buf ("f " ^ m.fingerprint ^ "\n");
  List.iter
    (fun (k, v) ->
       if String.contains k ' ' then
         invalid_arg "Store: manifest keys must not contain spaces";
       Buffer.add_string buf (record 'm' (k ^ " " ^ escape v)))
    m.meta;
  List.iteri
    (fun i label ->
       Buffer.add_string buf (record 't' (string_of_int i ^ " " ^ escape label)))
    m.tasks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)

type t = {
  path : string;
  mutable oc : out_channel option;
}

let checkpoint ~path (m : manifest) (outcomes : (int * string) list) : t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      output_string oc (manifest_lines m);
      List.iter
        (fun (i, payload) -> output_string oc (outcome_line i payload))
        outcomes;
      (* the rename publishes whatever made it to disk; flush first so
         "whatever" is the whole checkpoint *)
      flush oc);
  Sys.rename tmp path;
  { path; oc = Some (Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path) }

let append (t : t) (index : int) (payload : string) : unit =
  match t.oc with
  | None -> invalid_arg "Store.append: store is closed"
  | Some oc ->
    output_string oc (outcome_line index payload);
    (* flush per record: a crash after [append] returns must find the
       record on the other side of the channel buffer *)
    flush oc

let path_of t = t.path

let close (t : t) : unit =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    Out_channel.close oc

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)

type loaded = {
  l_manifest : manifest;
  l_outcomes : (int * string) list;
  l_torn : int;
}

let split_once ch s =
  match String.index_opt s ch with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* "<tag> <crc> <rest>" with a matching checksum, or None. *)
let parse_record (line : string) : (char * string) option =
  if String.length line < 2 || line.[1] <> ' ' then None
  else
    match split_once ' ' (String.sub line 2 (String.length line - 2)) with
    | Some (crc, rest) when crc = hash_hex rest -> Some (line.[0], rest)
    | _ -> None

let load ~path : (loaded, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
    let lines = String.split_on_char '\n' text in
    (* a file ending in '\n' splits into a trailing "" — harmless, the
       blank-line filter below drops it; a file NOT ending in '\n' has
       its (possibly torn) final line carried as-is, and the checksum
       decides its fate *)
    let err = ref None in
    let fingerprint = ref None in
    let meta = ref [] in
    let tasks = ref [] in       (* (index, label) *)
    let outcomes = ref [] in
    let torn = ref 0 in
    let in_journal = ref false in
    let fail lineno msg =
      if !err = None then
        err := Some (Printf.sprintf "%s: line %d: %s" path (lineno + 1) msg)
    in
    let int_field rest k =
      match split_once ' ' rest with
      | Some (i, v) ->
        (match (int_of_string_opt i, unescape v) with
         | Some i, Ok v -> k i v
         | _ -> None)
      | None -> None
    in
    List.iteri
      (fun lineno line ->
         if !err = None && line <> "" && (lineno > 0 || line = "# " ^ header)
         then
           match line.[0] with
           | '#' -> ()
           | 'o' ->
             in_journal := true;
             (* the journal tail is where torn writes live: a record
                that fails its checksum (or was cut short) is dropped —
                along with everything after it, because a write that
                tore mid-file means the file is not append-only and
                nothing downstream can be trusted *)
             if !torn > 0 then incr torn
             else
               (match parse_record line with
                | Some ('o', rest) ->
                  (match
                     int_field rest (fun i v -> Some (i, v))
                   with
                   | Some o -> outcomes := o :: !outcomes
                   | None -> incr torn)
                | _ -> incr torn)
           | _ when !in_journal ->
             (* non-'o' junk after the journal started: same torn-tail
                treatment *)
             incr torn
           | 'f' ->
             (match split_once ' ' line with
              | Some ("f", fp) when !fingerprint = None ->
                fingerprint := Some fp
              | _ -> fail lineno "malformed fingerprint record")
           | 'm' ->
             (match parse_record line with
              | Some ('m', rest) ->
                (match split_once ' ' rest with
                 | Some (k, v) ->
                   (match unescape v with
                    | Ok v -> meta := (k, v) :: !meta
                    | Error e -> fail lineno e)
                 | None -> fail lineno "malformed manifest record")
              | _ -> fail lineno "manifest record failed its checksum")
           | 't' ->
             (match parse_record line with
              | Some ('t', rest) ->
                (match int_field rest (fun i v -> Some (i, v)) with
                 | Some t -> tasks := t :: !tasks
                 | None -> fail lineno "malformed task record")
              | _ -> fail lineno "task record failed its checksum")
           | _ -> fail lineno (Printf.sprintf "unknown record %S" line)
         else if !err = None && lineno = 0 && line <> "# " ^ header then
           fail lineno
             (Printf.sprintf "expected header %S" ("# " ^ header)))
      lines;
    (match (!err, !fingerprint) with
     | Some e, _ -> Error e
     | None, None -> Error (path ^ ": missing fingerprint record")
     | None, Some fp ->
       let tasks =
         (* task records carry their index so order on disk is free;
            sort back into task order *)
         List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !tasks)
         |> List.map snd
       in
       Ok
         { l_manifest =
             { fingerprint = fp; meta = List.rev !meta; tasks };
           l_outcomes = List.rev !outcomes;
           l_torn = !torn })
