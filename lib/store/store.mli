(** Durable journaled storage for campaigns (and other task sweeps).

    A store file is a {e versioned, line-oriented text format} in the
    same spirit as the [# ldx-sched/1] schedule format: one header
    line, a manifest section, then an append-only journal of outcome
    records.  Every record line carries its own FNV-1a checksum, so a
    reader can detect torn writes (a process killed mid-[write(2)]) and
    recover the longest valid prefix instead of losing the file.

    Durability discipline:

    - {b checkpoint} writes the whole file (manifest + any outcomes) to
      a temporary sibling and atomically renames it into place — a
      crash during checkpoint leaves either the old file or the new
      one, never a hybrid;
    - {b append} adds one checksummed outcome record and flushes — a
      crash mid-append costs at most that record, which the checksum
      catches on the next load.

    The store knows nothing about what an outcome {e means}: payloads
    are opaque single-line strings (callers escape them; see
    {!escape}).  [Ldx_core.Campaign] layers fingerprint validation and
    outcome serialization on top.

    Format grammar (one record per line):
    {v
    # ldx-store/1
    f <fingerprint>             (caller-computed configuration digest)
    m <crc> <key> <value>       (manifest metadata, repeatable)
    t <crc> <index> <label>     (one per task, in task order)
    o <crc> <index> <payload>   (outcome journal; appended over time)
    v}
    where [<crc>] is the FNV-1a 64-bit hash of everything after the
    "[X <crc> ]" prefix, in lower-case hex.  Blank lines are ignored.
    ['#'] lines are comments (only the header is meaningful).

    {b # ldx-store/2} extends the journal section with {e lease}
    bookkeeping for the cross-process campaign service: besides [o]
    records, a v2 journal may carry
    {v
    l <crc> <index> <owner> <epoch> <deadline_us>   (lease claim)
    h <crc> <owner> <deadline_us>                   (worker heartbeat)
    r <crc> <index> <owner> <epoch>                 (lease release)
    v}
    Owners are opaque space-free worker identities; [epoch] counts how
    many times the task's lease has changed hands (claim arbitration:
    the {e first} record in file order for a given [(index, epoch)]
    wins); [deadline_us] is a wall-clock µs-since-epoch expiry.  Lease
    records are pure scheduling state — they never affect what a
    campaign's outcomes {e mean}, so a v2 reader can always ignore them
    and recover exactly the v1 outcome journal ({!loaded.l_outcomes}).
    A v1 reader, by design, refuses the v2 header rather than
    misparse it. *)

(** {1 Checksums and fingerprints} *)

(** FNV-1a 64-bit hash. *)
val fnv64 : string -> int64

(** Lower-case 16-hex-digit rendering of {!fnv64}. *)
val hash_hex : string -> string

(** Digest of an ordered list of parts (length-prefixed, so part
    boundaries matter: [["ab";"c"] <> ["a";"bc"]]). *)
val fingerprint : string list -> string

(** Escape a payload to a single line (C-style, ['\\'] escapes); inverse
    {!unescape}. *)
val escape : string -> string

val unescape : string -> (string, string) result

(** {1 Manifest} *)

type manifest = {
  fingerprint : string;
      (** opaque digest of everything the journaled outcomes depend on;
          {!load} returns it, callers decide whether it still matches *)
  meta : (string * string) list;  (** free-form metadata, in order *)
  tasks : string list;            (** task labels, in task order *)
}

(** {1 Journal entries}

    A v1 journal holds only {!Outcome} entries; a v2 journal
    additionally interleaves the lease-queue records. *)

type entry =
  | Outcome of { index : int; payload : string }
  | Lease of {
      index : int;
      owner : string;   (** space-free worker identity *)
      epoch : int;      (** lease generation; first (index, epoch) wins *)
      deadline_us : int;  (** wall-clock µs-since-epoch expiry *)
    }
  | Heartbeat of { owner : string; deadline_us : int }
      (** extends every lease [owner] holds to [deadline_us] *)
  | Release of { index : int; owner : string; epoch : int }
      (** clean hand-back (graceful drain): the task is free again and
          the owner is {e not} charged with an expiry *)

(** The checksummed single-line rendering of an entry (trailing
    newline included) — exactly what {!append_entry} writes.  Exposed
    so multi-process writers can append with one [write(2)] on an
    [O_APPEND] descriptor (the atomicity the lease-claim arbitration
    relies on).
    @raise Invalid_argument if an owner contains a space or newline. *)
val entry_line : entry -> string

(** {1 Writing} *)

type t

(** [checkpoint ~path manifest outcomes] atomically replaces [path]
    with a store holding [manifest] and the given [(index, payload)]
    outcome records, then leaves the store open for {!append}.

    [sync] (default [false]) additionally [fsync]s the file on
    checkpoint and after {e every} append: the flush-per-record
    default survives process crashes (the OS holds the data), [sync]
    survives power loss, at the cost of one disk round-trip per
    record (measured in bench, "durable" entry).
    @raise Sys_error on I/O failure. *)
val checkpoint : path:string -> ?sync:bool -> manifest -> (int * string) list -> t

(** [checkpoint_entries] is {!checkpoint} for a v2 store: the journal
    section is seeded with arbitrary entries (outcomes {e and} lease
    records) and the file carries the [# ldx-store/2] header. *)
val checkpoint_entries : path:string -> ?sync:bool -> manifest -> entry list -> t

(** Append one outcome record and flush (and [fsync] when the store
    was opened with [~sync:true]). *)
val append : t -> int -> string -> unit

(** Append any journal entry.  Non-[Outcome] entries require a store
    written by {!checkpoint_entries} (v2).
    @raise Invalid_argument on a lease record in a v1 store. *)
val append_entry : t -> entry -> unit

val path_of : t -> string

val close : t -> unit

(** {1 Reading} *)

type loaded = {
  l_manifest : manifest;
  l_version : int;                   (** 1 or 2, from the header *)
  l_entries : entry list;            (** valid journal entries, file order *)
  l_outcomes : (int * string) list;
      (** the [Outcome] projection of [l_entries], file order — exactly
          the v1 view, whatever the file version *)
  l_torn : int;
      (** records (or partial lines) dropped because a checksum failed
          or the line was cut short — [> 0] means a writer died
          mid-append.  v1 (single writer): the first bad record
          condemns everything after it.  v2 (many [O_APPEND] writers,
          each prefixing its record with a newline): bad records are
          dropped {e individually} — a peer killed mid-[write(2)]
          damages only its own record, later appends are intact. *)
}

(** Parse a store file (either version), recovering the longest valid
    prefix of the journal.  [Error] on a missing/renamed header or a
    corrupt {e manifest} section (the manifest is only ever written by
    an atomic checkpoint, so damage there is real corruption, not a
    torn append). *)
val load : path:string -> (loaded, string) result
