(** Durable journaled storage for campaigns (and other task sweeps).

    A store file is a {e versioned, line-oriented text format} in the
    same spirit as the [# ldx-sched/1] schedule format: one header
    line, a manifest section, then an append-only journal of outcome
    records.  Every record line carries its own FNV-1a checksum, so a
    reader can detect torn writes (a process killed mid-[write(2)]) and
    recover the longest valid prefix instead of losing the file.

    Durability discipline:

    - {b checkpoint} writes the whole file (manifest + any outcomes) to
      a temporary sibling and atomically renames it into place — a
      crash during checkpoint leaves either the old file or the new
      one, never a hybrid;
    - {b append} adds one checksummed outcome record and flushes — a
      crash mid-append costs at most that record, which the checksum
      catches on the next load.

    The store knows nothing about what an outcome {e means}: payloads
    are opaque single-line strings (callers escape them; see
    {!escape}).  [Ldx_core.Campaign] layers fingerprint validation and
    outcome serialization on top.

    Format grammar (one record per line):
    {v
    # ldx-store/1
    f <fingerprint>             (caller-computed configuration digest)
    m <crc> <key> <value>       (manifest metadata, repeatable)
    t <crc> <index> <label>     (one per task, in task order)
    o <crc> <index> <payload>   (outcome journal; appended over time)
    v}
    where [<crc>] is the FNV-1a 64-bit hash of everything after the
    "[X <crc> ]" prefix, in lower-case hex.  Blank lines are ignored.
    ['#'] lines are comments (only the header is meaningful). *)

(** {1 Checksums and fingerprints} *)

(** FNV-1a 64-bit hash. *)
val fnv64 : string -> int64

(** Lower-case 16-hex-digit rendering of {!fnv64}. *)
val hash_hex : string -> string

(** Digest of an ordered list of parts (length-prefixed, so part
    boundaries matter: [["ab";"c"] <> ["a";"bc"]]). *)
val fingerprint : string list -> string

(** Escape a payload to a single line (C-style, ['\\'] escapes); inverse
    {!unescape}. *)
val escape : string -> string

val unescape : string -> (string, string) result

(** {1 Manifest} *)

type manifest = {
  fingerprint : string;
      (** opaque digest of everything the journaled outcomes depend on;
          {!load} returns it, callers decide whether it still matches *)
  meta : (string * string) list;  (** free-form metadata, in order *)
  tasks : string list;            (** task labels, in task order *)
}

(** {1 Writing} *)

type t

(** [checkpoint ~path manifest outcomes] atomically replaces [path]
    with a store holding [manifest] and the given [(index, payload)]
    outcome records, then leaves the store open for {!append}.
    @raise Sys_error on I/O failure. *)
val checkpoint : path:string -> manifest -> (int * string) list -> t

(** Append one outcome record and flush. *)
val append : t -> int -> string -> unit

val path_of : t -> string

val close : t -> unit

(** {1 Reading} *)

type loaded = {
  l_manifest : manifest;
  l_outcomes : (int * string) list;  (** valid records, file order *)
  l_torn : int;
      (** records (or partial lines) dropped from the tail because a
          checksum failed or the line was cut short — [> 0] means the
          writer died mid-append *)
}

(** Parse a store file, recovering the longest valid prefix of the
    outcome journal.  [Error] on a missing/renamed header or a corrupt
    {e manifest} section (the manifest is only ever written by an
    atomic checkpoint, so damage there is real corruption, not a torn
    append). *)
val load : path:string -> (loaded, string) result
