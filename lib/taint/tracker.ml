(* The dynamic-tainting baseline engines (LIBDFT-like and TaintGrind-like).

   A direct recursive interpreter over the same IR the VM executes, with
   shadow taint on every value.  Differences from LDX that the paper's
   Table 3 hinges on:
   - propagation is data-dependence only (branch conditions never taint
     the values computed under them);
   - the LibDFT model additionally drops taint across a set of library
     calls (Names.libdft_unmodeled);
   - the engine monitors every instruction, which the cost model charges
     at Cost.taint_shadow extra cycles per instruction (the ~6x slowdown
     of Sec. 8.1).

   Threads are sequentialized ([spawn] runs the worker synchronously),
   a documented simplification: the taint verdicts of these baselines do
   not depend on interleaving for our workloads. *)

module Ir = Ldx_cfg.Ir
module Flat = Ldx_cfg.Flat
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Cost = Ldx_vm.Cost
module Value = Ldx_vm.Value
module Machine = Ldx_vm.Machine
module Engine = Ldx_core.Engine
open Ldx_lang

type config = {
  model : Shadow.model;
  sources : Engine.source_spec list;
  sinks : Engine.sink_config;
  max_steps : int;
}

let default_config =
  { model = Shadow.Taintgrind;
    sources = [ Engine.source ~sys:"recv" () ];
    sinks = Engine.Output_syscalls;
    max_steps = 30_000_000 }

type result = {
  tainted_sinks : int;           (* dynamic sink executions with tainted args *)
  total_sinks : int;
  tainted_sites : int list;      (* distinct static sites flagged *)
  cycles : int;
  steps : int;
  stdout : string;
  trap : string option;
}

exception Program_exit

type st = {
  prog : Ir.program;
  os : Os.t;
  config : config;
  is_sink : string -> int -> Sval.t list -> bool;
  mutable steps : int;
  mutable cycles : int;
  mutable tainted_sinks : int;
  mutable total_sinks : int;
  mutable tainted_sites : int list;
  source_hits : (int, int) Hashtbl.t;
  thread_results : (int, Shadow.t) Hashtbl.t;
  mutable next_tid : int;
}

let contains hay needle =
  (* allocation-free scan, same as Engine.contains *)
  let hn = String.length hay and nn = String.length needle in
  nn = 0
  || (let rec matches_at i j =
        j >= nn || (hay.[i + j] = needle.[j] && matches_at i (j + 1))
      in
      let rec scan i = i <= hn - nn && (matches_at i 0 || scan (i + 1)) in
      scan 0)

let is_source st ~sys ~site ~args ~resources =
  (* no short-circuit: every spec's occurrence counter must advance *)
  List.fold_left
    (fun hit (spec : Engine.source_spec) ->
       let base =
         (match spec.Engine.src_sys with
          | None -> true
          | Some s -> String.equal s sys)
         && (match spec.Engine.src_site with None -> true | Some s -> s = site)
         && (match spec.Engine.src_arg with
             | None -> true
             | Some sub ->
               List.exists (fun r -> contains r sub) resources
               || (match args with
                   | Sval.S a :: _ -> contains a sub
                   | _ -> false))
       in
       let this =
         if not base then false
         else
           match spec.Engine.src_nth with
           | None -> true
           | Some n ->
             let key = Hashtbl.hash spec in
             let c =
               1 + (try Hashtbl.find st.source_hits key with Not_found -> 0)
             in
             Hashtbl.replace st.source_hits key c;
             c = n
       in
       hit || this)
    false st.config.sources

let[@inline] charge st =
  st.steps <- st.steps + 1;
  if st.steps > st.config.max_steps then Value.trap "fuel exhausted";
  st.cycles <- st.cycles + Cost.instr + Cost.taint_shadow

let rec eval st (locals : (string, Shadow.t) Hashtbl.t) (e : Ast.expr) :
  Shadow.t =
  match e with
  | Ast.Int n -> Shadow.clean (Shadow.Int n)
  | Ast.Str s -> Shadow.clean (Shadow.Str s)
  | Ast.Var x ->
    (match Hashtbl.find_opt locals x with
     | Some v -> v
     | None -> Value.trap "undefined variable %s" x)
  | Ast.Funref f -> Shadow.clean (Shadow.Fptr f)
  | Ast.Unop (op, a) -> Shadow.apply_unop op (eval st locals a)
  | Ast.Binop (op, a, b) ->
    let va = eval st locals a in
    let vb = eval st locals b in
    Shadow.apply_binop op va vb
  | Ast.Index (a, i) ->
    let va = eval st locals a in
    let vi = eval st locals i in
    (match (va.Shadow.base, vi.Shadow.base) with
     | Shadow.Arr arr, Shadow.Int k ->
       if k >= 0 && k < Array.length arr then arr.(k)
       else Value.trap "index %d out of bounds (len %d)" k (Array.length arr)
     | Shadow.Str s, Shadow.Int k ->
       if k >= 0 && k < String.length s then
         Shadow.with_taint va.Shadow.taint (Shadow.Int (Char.code s.[k]))
       else Value.trap "string index %d out of bounds" k
     | _ -> Value.trap "indexing non-array")
  | Ast.Call (name, args) ->
    let vargs = List.map (eval st locals) args in
    Shadow.apply_builtin st.config.model name vargs

(* Syscall handling is shared by the tree and flat interpreters; [call]
   is whichever function-call path the caller runs under (so spawned
   workers execute in the same mode as their spawner). *)
let handle_syscall st ~(call : string -> Shadow.t list -> Shadow.t) ~sys ~site
    (vargs : Shadow.t list) : Shadow.t =
  match sys with
  | "lock" | "unlock" | "yield" -> Shadow.clean (Shadow.Int 0)
  | "spawn" ->
    (match vargs with
     | [ { Shadow.base = Shadow.Fptr f; _ }; arg ] ->
       let tid = st.next_tid in
       st.next_tid <- tid + 1;
       let r = call f [ arg ] in
       Hashtbl.replace st.thread_results tid r;
       Shadow.clean (Shadow.Int tid)
     | _ -> Value.trap "spawn: bad arguments")
  | "join" ->
    (match vargs with
     | [ { Shadow.base = Shadow.Int tid; _ } ] ->
       (match Hashtbl.find_opt st.thread_results tid with
        | Some r -> r
        | None -> Shadow.clean (Shadow.Int (-1)))
     | _ -> Value.trap "join: bad arguments")
  | _ ->
    let sargs = List.map Shadow.to_sval vargs in
    if st.is_sink sys site sargs then begin
      st.total_sinks <- st.total_sinks + 1;
      if List.exists (fun (v : Shadow.t) -> v.Shadow.taint <> 0) vargs then begin
        st.tainted_sinks <- st.tainted_sinks + 1;
        if not (List.mem site st.tainted_sites) then
          st.tainted_sites <- site :: st.tainted_sites
      end
    end;
    let r =
      try Os.exec st.os sys sargs
      with Os.Os_error msg -> raise (Value.Trap msg)
    in
    if Os.exited st.os then raise Program_exit;
    let resources = Os.resource_of_syscall st.os sys sargs in
    let taint = if is_source st ~sys ~site ~args:sargs ~resources then 1 else 0 in
    st.cycles <- st.cycles + Cost.syscall;
    Shadow.of_sval ~taint r

let rec call_function st (fname : string) (args : Shadow.t list) : Shadow.t =
  let fn = Ir.find_func_exn st.prog fname in
  let locals = Hashtbl.create 16 in
  (try List.iter2 (fun p a -> Hashtbl.replace locals p a) fn.Ir.params args
   with Invalid_argument _ ->
     Value.trap "call %s: arity mismatch" fname);
  exec_block st fn locals fn.Ir.entry

and exec_block st (fn : Ir.func) locals (bid : int) : Shadow.t =
  let block = fn.Ir.blocks.(bid) in
  let n = Array.length block.Ir.instrs in
  let rec instrs i =
    if i >= n then terminator ()
    else begin
      charge st;
      (match block.Ir.instrs.(i) with
       | Ir.Assign (x, e) -> Hashtbl.replace locals x (eval st locals e)
       | Ir.Store (a, ie, e) ->
         let va =
           match Hashtbl.find_opt locals a with
           | Some v -> v
           | None -> Value.trap "undefined variable %s" a
         in
         let vi = eval st locals ie in
         let ve = eval st locals e in
         (match (va.Shadow.base, vi.Shadow.base) with
          | Shadow.Arr arr, Shadow.Int k ->
            if k >= 0 && k < Array.length arr then arr.(k) <- ve
            else Value.trap "store index %d out of bounds" k
          | _ -> Value.trap "store into non-array %s" a)
       | Ir.Call { dst; callee; args; _ } ->
         let vargs = List.map (eval st locals) args in
         let r = call_function st callee vargs in
         (match dst with Some d -> Hashtbl.replace locals d r | None -> ())
       | Ir.Call_indirect { dst; fptr; args; _ } ->
         let vf = eval st locals fptr in
         let vargs = List.map (eval st locals) args in
         (match vf.Shadow.base with
          | Shadow.Fptr name ->
            let r = call_function st name vargs in
            (match dst with Some d -> Hashtbl.replace locals d r | None -> ())
          | _ -> Value.trap "indirect call through non-funptr")
       | Ir.Syscall { dst; sys; args; site } ->
         let vargs = List.map (eval st locals) args in
         let r = handle_syscall st ~call:(call_function st) ~sys ~site vargs in
         (match dst with Some d -> Hashtbl.replace locals d r | None -> ())
       | Ir.Cnt_add _ | Ir.Loop_enter _ | Ir.Loop_back _ | Ir.Loop_exit _ ->
         (* the taint baselines run uninstrumented code; tolerate anyway *)
         ());
      instrs (i + 1)
    end
  and terminator () =
    charge st;
    match block.Ir.term with
    | Ir.Jump l -> exec_block st fn locals l
    | Ir.Branch (c, bt, bf) ->
      (* NB: the branch taint is deliberately NOT propagated — this is
         the control-dependence blindness of these baselines *)
      let v = eval st locals c in
      exec_block st fn locals (if Shadow.truthy v then bt else bf)
    | Ir.Ret None -> Shadow.clean Shadow.Unit
    | Ir.Ret (Some e) -> eval st locals e
  in
  instrs 0

(* ------------------------------------------------------------------ *)
(* Flat interpreter: the default hot path, over the same compiled form
   as the VM ({!Ldx_cfg.Flat}) instantiated with shadow constants.
   Instruction-for-instruction equivalent to the tree walker above
   (every IR instruction and terminator is exactly one flat
   instruction, so [steps] and [cycles] agree between modes); the
   tracker-specific trap messages — which differ from the VM's — are
   reproduced exactly.  Calls still use host recursion, preserving the
   tree walker's stack-overflow behavior on deep recursion. *)

let shadow_consts : Shadow.t Flat.consts =
  { Flat.c_unit = Shadow.clean Shadow.Unit;
    c_int = (fun n -> Shadow.clean (Shadow.Int n));
    c_str = (fun s -> Shadow.clean (Shadow.Str s));
    c_fun = (fun f -> Shadow.clean (Shadow.Fptr f)) }

(* Unset-register sentinel (physical identity, like {!Value.undef}: the
   record is a unique allocation, never program-reachable). *)
let sh_undef : Shadow.t = Shadow.clean (Shadow.Arr [||])

let rec eval_flat st (regs : Shadow.t array) (names : string array)
    (e : Shadow.t Flat.fexpr) : Shadow.t =
  match e with
  | Flat.Const v -> v
  | Flat.Reg i ->
    (* unsafe: slots are lowering-assigned, always < Array.length regs *)
    let v = Array.unsafe_get regs i in
    if v == sh_undef then Value.trap "undefined variable %s" names.(i) else v
  | Flat.Unop (op, a) -> Shadow.apply_unop op (eval_flat st regs names a)
  | Flat.Binop (op, a, b) ->
    let va = eval_flat st regs names a in
    let vb = eval_flat st regs names b in
    Shadow.apply_binop op va vb
  | Flat.Index (a, i) ->
    let va = eval_flat st regs names a in
    let vi = eval_flat st regs names i in
    (match (va.Shadow.base, vi.Shadow.base) with
     | Shadow.Arr arr, Shadow.Int k ->
       if k >= 0 && k < Array.length arr then arr.(k)
       else Value.trap "index %d out of bounds (len %d)" k (Array.length arr)
     | Shadow.Str s, Shadow.Int k ->
       if k >= 0 && k < String.length s then
         Shadow.with_taint va.Shadow.taint (Shadow.Int (Char.code s.[k]))
       else Value.trap "string index %d out of bounds" k
     | _ -> Value.trap "indexing non-array")
  | Flat.Builtin (name, args) ->
    let n = Array.length args in
    let rec build i =
      if i = n then []
      else
        let v = eval_flat st regs names args.(i) in
        v :: build (i + 1)
    in
    Shadow.apply_builtin st.config.model name (build 0)
  (* specialized shapes: same semantics as the general arms above, with
     the leaf evaluations inlined (operand order preserved for traps) *)
  | Flat.BinopRR (op, i, j) ->
    let va = Array.unsafe_get regs i in
    let vb = Array.unsafe_get regs j in
    if va == sh_undef then Value.trap "undefined variable %s" names.(i)
    else if vb == sh_undef then Value.trap "undefined variable %s" names.(j)
    else Shadow.apply_binop op va vb
  | Flat.BinopRC (op, i, v) ->
    let va = Array.unsafe_get regs i in
    if va == sh_undef then Value.trap "undefined variable %s" names.(i)
    else Shadow.apply_binop op va v
  | Flat.BinopCR (op, v, j) ->
    let vb = Array.unsafe_get regs j in
    if vb == sh_undef then Value.trap "undefined variable %s" names.(j)
    else Shadow.apply_binop op v vb
  | Flat.IndexRR (x, y) ->
    let va = Array.unsafe_get regs x in
    let vi = Array.unsafe_get regs y in
    if va == sh_undef then Value.trap "undefined variable %s" names.(x)
    else if vi == sh_undef then Value.trap "undefined variable %s" names.(y)
    else
      (match (va.Shadow.base, vi.Shadow.base) with
       | Shadow.Arr arr, Shadow.Int k ->
         if k >= 0 && k < Array.length arr then arr.(k)
         else Value.trap "index %d out of bounds (len %d)" k (Array.length arr)
       | Shadow.Str s, Shadow.Int k ->
         if k >= 0 && k < String.length s then
           Shadow.with_taint va.Shadow.taint (Shadow.Int (Char.code s.[k]))
         else Value.trap "string index %d out of bounds" k
       | _ -> Value.trap "indexing non-array")

let rec exec_flat st (fprog : Shadow.t Flat.program)
    (fl : Shadow.t Flat.func) (regs : Shadow.t array) : Shadow.t =
  let code = fl.Flat.code in
  let names = fl.Flat.slot_names in
  let rec go pc : Shadow.t =
    (* unsafe fetch: [go (pc + 1)] only runs after non-terminators, and
       every block ends in a redirecting terminator, so pc stays in
       bounds by construction *)
    let ins = Array.unsafe_get code pc in
    charge st;
    match ins.Flat.op with
    | 0 (* assign *) ->
      Array.unsafe_set regs ins.Flat.dst (eval_flat st regs names ins.Flat.e1);
      go (pc + 1)
    | 1 (* store *) ->
      let va = regs.(ins.Flat.a) in
      if va == sh_undef then
        Value.trap "undefined variable %s" ins.Flat.name;
      let vi = eval_flat st regs names ins.Flat.e1 in
      let ve = eval_flat st regs names ins.Flat.e2 in
      (match (va.Shadow.base, vi.Shadow.base) with
       | Shadow.Arr arr, Shadow.Int k ->
         if k >= 0 && k < Array.length arr then arr.(k) <- ve
         else Value.trap "store index %d out of bounds" k
       | _ -> Value.trap "store into non-array %s" ins.Flat.name);
      go (pc + 1)
    | 2 (* call *) ->
      let fl2 = fprog.Flat.funcs.(ins.Flat.a) in
      let regs2 = Array.make fl2.Flat.nslots sh_undef in
      let args = ins.Flat.args in
      for i = 0 to Array.length args - 1 do
        regs2.(i) <- eval_flat st regs names args.(i)
      done;
      let r = exec_flat st fprog fl2 regs2 in
      if ins.Flat.dst >= 0 then regs.(ins.Flat.dst) <- r;
      go (pc + 1)
    | 3 (* call_indirect *) ->
      let vf = eval_flat st regs names ins.Flat.e1 in
      let args = ins.Flat.args in
      let n = Array.length args in
      let rec build i =
        if i = n then []
        else
          let v = eval_flat st regs names args.(i) in
          v :: build (i + 1)
      in
      let vargs = build 0 in
      (match vf.Shadow.base with
       | Shadow.Fptr name ->
         let r = call_function_flat st fprog name vargs in
         if ins.Flat.dst >= 0 then regs.(ins.Flat.dst) <- r;
         go (pc + 1)
       | _ -> Value.trap "indirect call through non-funptr")
    | 4 (* syscall *) ->
      let args = ins.Flat.args in
      let n = Array.length args in
      let rec build i =
        if i = n then []
        else
          let v = eval_flat st regs names args.(i) in
          v :: build (i + 1)
      in
      let r =
        handle_syscall st ~call:(call_function_flat st fprog)
          ~sys:ins.Flat.name ~site:ins.Flat.b (build 0)
      in
      if ins.Flat.dst >= 0 then regs.(ins.Flat.dst) <- r;
      go (pc + 1)
    | 5 | 6 | 7 | 8 (* instrumentation: tolerated, never interpreted *) ->
      go (pc + 1)
    | 9 (* jump *) -> go ins.Flat.a
    | 10 (* branch: taint deliberately NOT propagated *) ->
      let v = eval_flat st regs names ins.Flat.e1 in
      go (if Shadow.truthy v then ins.Flat.a else ins.Flat.b)
    | 11 (* ret *) -> eval_flat st regs names ins.Flat.e1
    | 12 (* statically-diagnosed arity mismatch: args evaluate first *) ->
      let args = ins.Flat.args in
      for i = 0 to Array.length args - 1 do
        ignore (eval_flat st regs names args.(i) : Shadow.t)
      done;
      Value.trap "call %s: arity mismatch" ins.Flat.name
    | 13 (* statically-unknown callee *) ->
      let args = ins.Flat.args in
      for i = 0 to Array.length args - 1 do
        ignore (eval_flat st regs names args.(i) : Shadow.t)
      done;
      ignore (Ir.find_func_exn st.prog ins.Flat.name : Ir.func);
      assert false
    | _ -> assert false
  in
  go fl.Flat.entry_pc

and call_function_flat st (fprog : Shadow.t Flat.program) (fname : string)
    (args : Shadow.t list) : Shadow.t =
  match Hashtbl.find_opt fprog.Flat.fidx fname with
  | None ->
    (* same Invalid_argument as the tree walker's find_func_exn *)
    ignore (Ir.find_func_exn st.prog fname : Ir.func);
    assert false
  | Some fi ->
    let fl = fprog.Flat.funcs.(fi) in
    if List.length args <> fl.Flat.nparams then
      Value.trap "call %s: arity mismatch" fname;
    let regs = Array.make fl.Flat.nslots sh_undef in
    List.iteri (fun i a -> regs.(i) <- a) args;
    exec_flat st fprog fl regs

let run ?(config = default_config) ?vm (prog : Ir.program) (world : World.t) :
  result =
  let vm = match vm with Some v -> v | None -> !Machine.default_vm in
  let os = Os.create ~pid:2000 world in
  let st =
    { prog; os; config;
      is_sink = Engine.sink_pred config.sinks;
      steps = 0; cycles = 0;
      tainted_sinks = 0; total_sinks = 0; tainted_sites = [];
      source_hits = Hashtbl.create 4;
      thread_results = Hashtbl.create 4;
      next_tid = 1 }
  in
  let trap =
    try
      (match vm with
       | Machine.Tree -> ignore (call_function st "main" [] : Shadow.t)
       | Machine.Flat ->
         let fprog = Flat.compile shadow_consts prog in
         ignore (call_function_flat st fprog "main" [] : Shadow.t));
      None
    with
    | Program_exit -> None
    | Value.Trap msg -> Some msg
    | Stack_overflow -> Some "stack overflow"
  in
  { tainted_sinks = st.tainted_sinks;
    total_sinks = st.total_sinks;
    tainted_sites = List.rev st.tainted_sites;
    cycles = st.cycles;
    steps = st.steps;
    stdout = Os.stdout_contents os;
    trap }

let run_source ?config ?vm src world =
  run ?config ?vm (Ldx_cfg.Lower.lower_source src) world
