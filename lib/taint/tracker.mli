(** The dynamic-tainting baseline engines (LIBDFT-like, TaintGrind-like).

    A direct interpreter over the same IR the VM executes, with shadow
    taint on every value.  Differences from LDX that Table 3 hinges on:
    data-dependence-only propagation (branch conditions never taint what
    is computed under them), the LibDFT library-call modelling gap, and a
    per-instruction monitoring cost ({!Ldx_vm.Cost.taint_shadow}, the ~6x
    slowdown of Sec. 8.1).  Threads are sequentialized ([spawn] runs the
    worker synchronously) — a documented simplification. *)

type config = {
  model : Shadow.model;
  sources : Ldx_core.Engine.source_spec list;
  sinks : Ldx_core.Engine.sink_config;
  max_steps : int;
}

(** TaintGrind model, recv sources, output sinks. *)
val default_config : config

type result = {
  tainted_sinks : int;       (** dynamic sink executions with tainted args *)
  total_sinks : int;
  tainted_sites : int list;  (** distinct static sites flagged *)
  cycles : int;
  steps : int;
  stdout : string;
  trap : string option;
}

(** Run on an UNinstrumented program (counter instructions, if present,
    are ignored).  [?vm] selects the interpreter form — flat bytecode
    (default, {!Ldx_vm.Machine.default_vm}) or the original tree walk;
    both produce identical verdicts, steps and cycles. *)
val run :
  ?config:config -> ?vm:Ldx_vm.Machine.vm_mode ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> result

val run_source :
  ?config:config -> ?vm:Ldx_vm.Machine.vm_mode ->
  string -> Ldx_osim.World.t -> result
