(* Shadow values for the dynamic-tainting baselines (Table 3).

   Taint is a bitset of source ids attached to every value.  Propagation
   is data-dependence only — the defining limitation of LIBDFT and
   TAINTGRIND the paper exploits: control dependences never propagate.
   Scalar operations delegate to the VM's {!Ldx_vm.Eval} (so the
   baselines compute exactly what the real VM computes) and re-attach
   taint per the model's propagation rule. *)

open Ldx_lang
module Value = Ldx_vm.Value

type t = { base : base; taint : int }

and base =
  | Unit
  | Int of int
  | Str of string
  | Arr of t array
  | Fptr of string

(* Shared clean boxes for small ints, mirroring [Value.int]: shadow
   arithmetic on untainted values (the overwhelmingly common case in the
   Table 3 workloads) reuses one box per value instead of allocating a
   record + Int block per operation. *)
let small_clean = Array.init 257 (fun i -> { base = Int (i - 1); taint = 0 })

let[@inline] with_taint taint base =
  match base with
  | Int n when taint = 0 && n >= -1 && n <= 255 ->
    Array.unsafe_get small_clean (n + 1)
  | _ -> { base; taint }

let clean base = with_taint 0 base

let truthy v =
  match v.base with
  | Int 0 | Unit | Str "" -> false
  | Int _ | Str _ | Arr _ | Fptr _ -> true

let rec to_value (v : t) : Value.t =
  match v.base with
  | Unit -> Value.Unit
  | Int n -> Value.int n
  | Str s -> Value.Str s
  | Fptr f -> Value.Fptr f
  | Arr a -> Value.Arr (Array.map to_value a)

let rec of_value ~taint (v : Value.t) : t =
  match v with
  | Value.Unit -> with_taint taint Unit
  | Value.Int n -> with_taint taint (Int n)
  | Value.Str s -> with_taint taint (Str s)
  | Value.Fptr f -> with_taint taint (Fptr f)
  | Value.Arr a -> with_taint taint (Arr (Array.map (of_value ~taint) a))

let to_sval v = Value.to_sval_safe (to_value v)

let of_sval ~taint = function
  | Ldx_osim.Sval.I n -> with_taint taint (Int n)
  | Ldx_osim.Sval.S s -> with_taint taint (Str s)

(* Which model of library-call ("builtin") taint propagation: TaintGrind
   models every builtin; LibDFT drops taint across Names.libdft_unmodeled
   (the paper's observed modelling gap, Sec. 8.3). *)
type model = Taintgrind | Libdft

let model_to_string = function Taintgrind -> "taintgrind" | Libdft -> "libdft"

let union_taint args = List.fold_left (fun acc a -> acc lor a.taint) 0 args

let builtin_taint (model : model) (name : string) (args : t list) : int =
  match model with
  | Taintgrind -> union_taint args
  | Libdft -> if List.mem name Names.libdft_unmodeled then 0 else union_taint args

let apply_builtin (model : model) (name : string) (args : t list) : t =
  match (name, args) with
  (* array builtins operate on shadow arrays directly so element taint
     survives *)
  | "mkarray", [ { base = Int n; _ }; init ] ->
    if n < 0 || n > 1_000_000 then Value.trap "mkarray: bad size %d" n
    else clean (Arr (Array.make n init))
  | "len", [ { base = Arr a; taint } ] ->
    with_taint taint (Int (Array.length a))
  | _ ->
    let vals = List.map to_value args in
    let r = Ldx_vm.Eval.apply_builtin name vals in
    of_value ~taint:(builtin_taint model name args) r

(* Int/Int is the hot case; computing it directly skips two [to_value]
   and one [of_value] conversion per operation.  Semantics (including
   trap messages and the shift/truthiness edge cases) mirror
   {!Ldx_vm.Eval.apply_binop} exactly — the generic fallback below is
   the reference. *)
let apply_binop op a b =
  match (a.base, b.base) with
  | Int x, Int y ->
    let r =
      match (op : Ast.binop) with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div -> if y = 0 then Value.trap "division by zero" else x / y
      | Ast.Mod -> if y = 0 then Value.trap "modulo by zero" else x mod y
      | Ast.Eq -> if x = y then 1 else 0
      | Ast.Ne -> if x <> y then 1 else 0
      | Ast.Lt -> if x < y then 1 else 0
      | Ast.Le -> if x <= y then 1 else 0
      | Ast.Gt -> if x > y then 1 else 0
      | Ast.Ge -> if x >= y then 1 else 0
      | Ast.Band -> x land y
      | Ast.Bor -> x lor y
      | Ast.Bxor -> x lxor y
      | Ast.Shl -> if y < 0 || y > 62 then 0 else x lsl y
      | Ast.Shr -> if y < 0 || y > 62 then 0 else x asr y
      | Ast.And -> if x <> 0 && y <> 0 then 1 else 0
      | Ast.Or -> if x <> 0 || y <> 0 then 1 else 0
    in
    with_taint (a.taint lor b.taint) (Int r)
  | _ ->
    let r = Ldx_vm.Eval.apply_binop op (to_value a) (to_value b) in
    of_value ~taint:(a.taint lor b.taint) r

let apply_unop op a =
  match (a.base, (op : Ast.unop)) with
  | Int x, Ast.Neg -> with_taint a.taint (Int (-x))
  | Int x, Ast.Not -> with_taint a.taint (Int (if x = 0 then 1 else 0))
  | _ ->
    let r = Ldx_vm.Eval.apply_unop op (to_value a) in
    of_value ~taint:a.taint r
