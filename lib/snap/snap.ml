(* Decouple-point snapshots.

   The machine half ([Machine.snapshot]) is already canonical pure
   data; this module adds the canonical projection of the osim world
   (the Hashtbl-bearing [Os]/[Vfs]/[Net] state becomes sorted assoc
   lists), optional profile counters, a format version, and the
   identity/wire operations.

   Canonicality is the load-bearing property: because a snapshot
   contains no Hashtbls, no closures and no nondeterministically
   ordered collections, two captures of identical execution states are
   structurally equal AND produce identical [Marshal] images — so
   [equal] can compare bytes (robust to cyclic arrays, which would
   send a naive structural compare into a loop), [fingerprint] can
   digest them, and the wire form round-trips bit-exactly. *)

module Machine = Ldx_vm.Machine
module Profile = Ldx_vm.Profile
module Sched = Ldx_sched.Scheduler
module Ir = Ldx_cfg.Ir
module Flat = Ldx_cfg.Flat
module Os = Ldx_osim.Os
module Vfs = Ldx_osim.Vfs
module Net = Ldx_osim.Net
module Fault = Ldx_osim.Fault
module Store = Ldx_store.Store

type sfd =
  | S_fd_file of { sfd_path : string; sfd_pos : int }
  | S_fd_sock of string

type sentry =
  | S_file of { sdata : string; smtime : int }
  | S_dir

type sos = {
  so_pid : int;
  so_fds : (int * sfd) list;
  so_next_fd : int;
  so_clock : int;
  so_rng : int;
  so_stdout : string;
  so_next_addr : int;
  so_malloc_log : int list;
  so_retaddr_log : int list;
  so_exit_code : int option;
  so_vfs_clock : int;
  so_vfs : (string * sentry) list;
  so_net : (string * string list * string list) list;
  so_faults : Fault.state option;
}

type t = {
  sp_version : int;
  sp_machine : Machine.snapshot;
  sp_os : sos;
  sp_prof : Profile.snapshot option;
}

let version = 1

(* ------------------------------------------------------------------ *)
(* The osim world, canonically.                                        *)

let sos_of_os (os : Os.t) : sos =
  let fds =
    Hashtbl.fold
      (fun fd e acc ->
         ( fd,
           match e with
           | Os.Fd_file { path; pos } ->
             S_fd_file { sfd_path = path; sfd_pos = pos }
           | Os.Fd_sock name -> S_fd_sock name )
         :: acc)
      os.Os.fds []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  let vfs =
    Hashtbl.fold
      (fun path e acc ->
         ( path,
           match e with
           | Vfs.File { data; mtime } -> S_file { sdata = data; smtime = mtime }
           | Vfs.Dir -> S_dir )
         :: acc)
      os.Os.vfs.Vfs.entries []
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
  in
  let net =
    Hashtbl.fold
      (fun name (ep : Net.endpoint) acc ->
         (name, ep.Net.inbox, ep.Net.outbox) :: acc)
      os.Os.net.Net.endpoints []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare (a : string) b)
  in
  { so_pid = os.Os.pid;
    so_fds = fds;
    so_next_fd = os.Os.next_fd;
    so_clock = os.Os.clock;
    so_rng = os.Os.rng;
    so_stdout = Buffer.contents os.Os.stdout;
    so_next_addr = os.Os.next_addr;
    so_malloc_log = os.Os.malloc_log;
    so_retaddr_log = os.Os.retaddr_log;
    so_exit_code = os.Os.exit_code;
    so_vfs_clock = os.Os.vfs.Vfs.clock;
    so_vfs = vfs;
    so_net = net;
    (* [copy_state] severs the counters from the live execution; the
       plan inside is immutable and safely shared. *)
    so_faults = Option.map Fault.copy_state os.Os.faults }

let os_of_sos (s : sos) : Os.t =
  let entries = Hashtbl.create (max 16 (List.length s.so_vfs)) in
  List.iter
    (fun (path, e) ->
       Hashtbl.replace entries path
         (match e with
          | S_file { sdata; smtime } -> Vfs.File { data = sdata; mtime = smtime }
          | S_dir -> Vfs.Dir))
    s.so_vfs;
  let endpoints = Hashtbl.create (max 8 (List.length s.so_net)) in
  List.iter
    (fun (name, inbox, outbox) ->
       Hashtbl.replace endpoints name { Net.name; inbox; outbox })
    s.so_net;
  let fds = Hashtbl.create (max 8 (List.length s.so_fds)) in
  List.iter
    (fun (fd, e) ->
       Hashtbl.replace fds fd
         (match e with
          | S_fd_file { sfd_path; sfd_pos } ->
            Os.Fd_file { path = sfd_path; pos = sfd_pos }
          | S_fd_sock name -> Os.Fd_sock name))
    s.so_fds;
  let stdout = Buffer.create (max 64 (String.length s.so_stdout)) in
  Buffer.add_string stdout s.so_stdout;
  { Os.vfs = { Vfs.entries; clock = s.so_vfs_clock };
    net = { Net.endpoints };
    pid = s.so_pid;
    fds;
    next_fd = s.so_next_fd;
    clock = s.so_clock;
    rng = s.so_rng;
    stdout;
    next_addr = s.so_next_addr;
    malloc_log = s.so_malloc_log;
    retaddr_log = s.so_retaddr_log;
    exit_code = s.so_exit_code;
    faults = Option.map Fault.copy_state s.so_faults;
    on_exec = None;
    on_fault = None }

(* ------------------------------------------------------------------ *)
(* Capture / restore.                                                  *)

let capture (m : Machine.t) : t =
  { sp_version = version;
    sp_machine = Machine.snapshot m;
    sp_os = sos_of_os m.Machine.os;
    sp_prof = Option.map Profile.snapshot m.Machine.prof }

let restore ?prof ?sched ?fprog (prog : Ir.program) (snap : t) : Machine.t =
  let os = os_of_sos snap.sp_os in
  let prof =
    match prof with
    | Some _ as p -> p
    | None -> Option.map (Profile.of_snapshot prog) snap.sp_prof
  in
  let fprog =
    match fprog with Some f -> f | None -> Machine.compile prog
  in
  Machine.restore ?prof ?sched ~prog ~fprog os snap.sp_machine

(* ------------------------------------------------------------------ *)
(* Identity.                                                           *)

(* The canonical byte image.  Default Marshal flags keep sharing, which
   both terminates on cyclic arrays and preserves the capture's aliasing
   structure; capture is deterministic, so identical states yield
   identical images. *)
let payload (t : t) : string = Marshal.to_string t []

let equal (a : t) (b : t) : bool = String.equal (payload a) (payload b)

let header = "ldx-snap/1"

let fingerprint (t : t) : string = Store.fingerprint [ header; payload t ]

(* ------------------------------------------------------------------ *)
(* Wire form: one line, ["ldx-snap/1 <digest> <hex payload>"].         *)

let hex_of (s : string) : string =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex (s : string) : (string, string) result =
  let n = String.length s in
  if n mod 2 <> 0 then Error "ldx-snap: odd hex length"
  else begin
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | _ -> -1
    in
    let exception Bad in
    match
      String.init (n / 2) (fun i ->
          let h = digit s.[2 * i] and l = digit s.[(2 * i) + 1] in
          if h < 0 || l < 0 then raise Bad;
          Char.chr ((h lsl 4) lor l))
    with
    | body -> Ok body
    | exception Bad -> Error "ldx-snap: bad hex digit"
  end

let to_string (t : t) : string =
  let body = payload t in
  Printf.sprintf "%s %s %s" header (Store.fingerprint [ header; body ])
    (hex_of body)

let of_string (s : string) : (t, string) result =
  match String.split_on_char ' ' (String.trim s) with
  | [ h; digest; hx ] when String.equal h header -> (
      match unhex hx with
      | Error _ as e -> e
      | Ok body ->
        if not (String.equal digest (Store.fingerprint [ header; body ])) then
          Error "ldx-snap: digest mismatch (torn or corrupt payload)"
        else (
          (* The digest guards the unmarshal: only bytes we produced
             (and that survived transport intact) reach it. *)
          match (Marshal.from_string body 0 : t) with
          | t ->
            if t.sp_version <> version then
              Error
                (Printf.sprintf "ldx-snap: unsupported version %d" t.sp_version)
            else Ok t
          | exception _ -> Error "ldx-snap: corrupt payload"))
  | _ -> Error "ldx-snap: bad header"

let save ~path (t : t) : (unit, string) result =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         output_string oc (to_string t);
         output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m

let load ~path : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> input_line ic)
  with
  | line -> of_string line
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error "ldx-snap: empty file"
