(** Decouple-point snapshots: versioned, self-contained captures of a
    complete execution — VM machine state ([Machine.snapshot]: frames,
    register slots, per-thread stacks, spawn indices, fuel), the osim
    world (fds, filesystem, network, clock, rng, fault counters), the
    scheduler cursor, and profile counters — with restore, equality,
    fingerprinting, and an opt-in serialized form that crosses process
    boundaries (e.g. through an [Ldx_store] journal).

    Everything inside a snapshot is {e canonical pure data}: Hashtbls
    are projected to sorted assoc lists at capture, there are no
    closures and no aliases into the live execution.  Equal execution
    states therefore project to structurally equal snapshots, and the
    [Marshal] image of a snapshot is stable — which is what {!equal},
    {!fingerprint} and {!to_string} rest on.

    Capture is a pull operation: an execution that is never snapshotted
    pays nothing (the machine has no snapshot hooks to check).  The
    captured execution may keep running, and one snapshot supports any
    number of {!restore}s — both capture and restore deep-copy values
    through an identity memo, preserving aliasing (including cyclic
    arrays) inside each copy while severing it from the others. *)

module Machine = Ldx_vm.Machine
module Profile = Ldx_vm.Profile
module Sched = Ldx_sched.Scheduler
module Ir = Ldx_cfg.Ir

(** {1 The osim world, canonically} *)

type sfd =
  | S_fd_file of { sfd_path : string; sfd_pos : int }
  | S_fd_sock of string

type sentry =
  | S_file of { sdata : string; smtime : int }
  | S_dir

type sos = {
  so_pid : int;
  so_fds : (int * sfd) list;          (** fd-sorted *)
  so_next_fd : int;
  so_clock : int;
  so_rng : int;
  so_stdout : string;
  so_next_addr : int;
  so_malloc_log : int list;
  so_retaddr_log : int list;
  so_exit_code : int option;
  so_vfs_clock : int;
  so_vfs : (string * sentry) list;    (** path-sorted *)
  so_net : (string * string list * string list) list;
      (** name-sorted: (endpoint, remaining inbox, raw outbox) *)
  so_faults : Ldx_osim.Fault.state option;
      (** occurrence counters preserved (pure data) *)
}

(** {1 Snapshots} *)

type t = {
  sp_version : int;                   (** format version; see {!version} *)
  sp_machine : Machine.snapshot;
  sp_os : sos;
  sp_prof : Profile.snapshot option;  (** counters when profiling was on *)
}

(** The current snapshot format version (1). *)
val version : int

(** Capture the machine and its OS world.  Safe at any driver-visible
    point; the machine keeps running unperturbed. *)
val capture : Machine.t -> t

(** Canonical projection of an OS world (the osim half of {!capture}). *)
val sos_of_os : Ldx_osim.Os.t -> sos

(** Rebuild a private OS world from its projection: hooks unset,
    fault counters where they stood. *)
val os_of_sos : sos -> Ldx_osim.Os.t

(** Rebuild a runnable machine over a freshly rebuilt OS world.
    [prog] must be the program the snapshot was captured from (cheap
    shape validation raises [Invalid_argument] on mismatch — callers
    wanting a proper verdict should check {!fingerprint} first).
    [?fprog] reuses an existing compilation instead of recompiling;
    [?prof] overrides the snapshot's own profile counters; [?sched]
    overrides the scheduler state — the suffix-replay hook: restoring
    under an alternative schedule explores interleavings from the
    decouple point on.  Obs hooks and the lock gate start unset. *)
val restore :
  ?prof:Profile.t -> ?sched:Sched.state ->
  ?fprog:Ldx_vm.Value.t Ldx_cfg.Flat.program -> Ir.program -> t ->
  Machine.t

(** {1 Identity} *)

(** Structural equality over the canonical [Marshal] image — robust to
    cyclic values, insensitive to Hashtbl history by construction. *)
val equal : t -> t -> bool

(** Digest of the canonical [Marshal] image ([Store.fingerprint]
    discipline).  Two captures of identical execution states agree;
    any state difference (and the format version) changes it. *)
val fingerprint : t -> string

(** {1 Wire form}

    A single line — ["ldx-snap/1 <digest> <hex payload>"] — so a
    snapshot can ride anywhere a newline-free string can: an
    [Ldx_store] journal record, an environment block, a file. *)

val header : string

val to_string : t -> string

(** Parse and verify: header, version, digest (torn or corrupt payloads
    are rejected, never half-decoded). *)
val of_string : string -> (t, string) result

(** {!to_string} to a file (plus trailing newline), atomically
    (temp sibling + rename). *)
val save : path:string -> t -> (unit, string) result

(** Load a snapshot saved by {!save}. *)
val load : path:string -> (t, string) result
