(* Lease-based multi-process work queue over a v2 store file.  See the
   interface for the state machine; the load-bearing decisions here:

   - arbitration is structural, not temporal: the fold accepts the
     FIRST record for a given (index, epoch) and ignores later ones, so
     whoever's write(2) landed first owns the lease — claimants verify
     by re-reading after they append;
   - the fold is clock-free: expiry is judged only by claimants, at
     claim time, against the effective deadline the fold computed —
     so every process reading the file derives the identical view;
   - appends carry a leading newline so that a peer killed mid-write
     damages only its own (checksummed) record, never ours. *)

module Store = Ldx_store.Store
module Obs = Ldx_obs

type lease = { holder : string; epoch : int; deadline_us : int }

type task_state =
  | Free of { next_epoch : int }
  | Leased of lease
  | Done of { payload : string }

type view = {
  manifest : Store.manifest;
  states : task_state array;
  expired_owners : string list array;
  torn : int;
}

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let view_of (l : Store.loaded) : view =
  let n = List.length l.Store.l_manifest.Store.tasks in
  let states = Array.make n (Free { next_epoch = 0 }) in
  let expired = Array.make n [] in
  (* owner -> latest heartbeat deadline; deadlines only move forward *)
  let heartbeats : (string, int) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun (e : Store.entry) ->
       match e with
       | Store.Outcome { index; payload } ->
         if index >= 0 && index < n then
           (match states.(index) with
            | Done _ -> ()     (* first outcome wins; duplicates ignored *)
            | Free _ | Leased _ -> states.(index) <- Done { payload })
       | Store.Lease { index; owner; epoch; deadline_us } ->
         if index >= 0 && index < n then
           (match states.(index) with
            | Done _ -> ()
            | Free { next_epoch } when epoch = next_epoch ->
              states.(index) <- Leased { holder = owner; epoch; deadline_us }
            | Free _ -> ()     (* stale epoch: lost race *)
            | Leased cur when epoch = cur.epoch + 1 ->
              (* reclaim of an expired lease — the claimant checked the
                 clock before appending; here we only arbitrate.  The
                 previous holder is charged with an expiry (it did not
                 release), which is what quarantine escalation counts. *)
              if not (List.mem cur.holder expired.(index)) then
                expired.(index) <- cur.holder :: expired.(index);
              states.(index) <- Leased { holder = owner; epoch; deadline_us }
            | Leased _ -> ())
       | Store.Heartbeat { owner; deadline_us } ->
         let prev =
           Option.value (Hashtbl.find_opt heartbeats owner) ~default:min_int
         in
         if deadline_us > prev then Hashtbl.replace heartbeats owner deadline_us
       | Store.Release { index; owner; epoch } ->
         if index >= 0 && index < n then
           (match states.(index) with
            | Leased cur when cur.holder = owner && cur.epoch = epoch ->
              states.(index) <- Free { next_epoch = epoch + 1 }
            | _ -> ()))
    l.Store.l_entries;
  (* fold heartbeats into effective deadlines: a lease is as alive as
     its holder's latest heartbeat *)
  Array.iteri
    (fun i st ->
       match st with
       | Leased cur ->
         (match Hashtbl.find_opt heartbeats cur.holder with
          | Some d when d > cur.deadline_us ->
            states.(i) <- Leased { cur with deadline_us = d }
          | _ -> ())
       | Free _ | Done _ -> ())
    states;
  { manifest = l.Store.l_manifest;
    states;
    expired_owners = Array.map List.rev expired;
    torn = l.Store.l_torn }

let load ~path =
  Result.map view_of (Store.load ~path)

let remaining v =
  Array.fold_left
    (fun acc st -> match st with Done _ -> acc | _ -> acc + 1)
    0 v.states

let is_complete v = remaining v = 0

let outcomes v =
  Array.to_list v.states
  |> List.mapi (fun i st -> (i, st))
  |> List.filter_map (fun (i, st) ->
      match st with Done { payload } -> Some (i, payload) | _ -> None)

(* -------------------------------------------------------------------- *)
(* Appending *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let append ~path ?(sync = false) (e : Store.entry) =
  (* the leading newline terminates whatever half-written line a killed
     peer left at the tail; blank lines are ignored by the loader *)
  let line = "\n" ^ Store.entry_line e in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  write_all fd line 0 (String.length line);
  if sync then Unix.fsync fd

(* -------------------------------------------------------------------- *)
(* The worker protocol *)

type claim_result =
  | Claimed of { index : int; epoch : int; reclaimed_from : string option }
  | Wait
  | Drained

(* first Free-or-expired task, with the epoch a claim must carry *)
let pick_claimable v ~now_us =
  let n = Array.length v.states in
  let rec go i =
    if i >= n then None
    else
      match v.states.(i) with
      | Free { next_epoch } -> Some (i, next_epoch, None)
      | Leased { holder; epoch; deadline_us } when now_us > deadline_us ->
        Some (i, epoch + 1, Some holder)
      | Leased _ | Done _ -> go (i + 1)
  in
  go 0

let claim ~path ~owner ~now_us ~ttl_us ?(sync = false) () =
  let ( let* ) = Result.bind in
  let rec go view =
    match pick_claimable view ~now_us with
    | None -> Ok (if is_complete view then Drained else Wait)
    | Some (index, epoch, reclaimed_from) ->
      append ~path ~sync
        (Store.Lease { index; owner; epoch; deadline_us = now_us + ttl_us });
      (* never trust the pre-append read: the fold over the re-read
         file is the arbiter *)
      let* view = load ~path in
      (match view.states.(index) with
       | Leased { holder; epoch = e; _ } when holder = owner && e = epoch ->
         Ok (Claimed { index; epoch; reclaimed_from })
       | _ -> go view (* lost the race; try the next claimable task *))
  in
  let* view = load ~path in
  go view

let heartbeat ~path ~owner ~deadline_us ?(sync = false) () =
  append ~path ~sync (Store.Heartbeat { owner; deadline_us })

let release ~path ~index ~owner ~epoch ?(sync = false) () =
  append ~path ~sync (Store.Release { index; owner; epoch })

let complete ~path ~index ~payload ?(sync = false) () =
  append ~path ~sync (Store.Outcome { index; payload })

(* -------------------------------------------------------------------- *)
(* Worker loop *)

module Worker = struct
  type outcome = Complete | Drained

  let run ?obs ?(stop = fun () -> false) ?(now_us = now_us)
      ?(sleep_us = fun us -> Unix.sleepf (float_of_int us /. 1e6))
      ?(sync = false) ~path ~owner ~ttl_us ~heartbeat_us ~poll_us task =
    let emit ev = Obs.Sink.emit_opt obs ev in
    emit (Obs.Event.Worker_event { owner; kind = "start" });
    (* the heartbeat domain parks in select(2) on a self-pipe: it
       sleeps whole heartbeat periods without polling (wake-churn from
       N sleeping domains is visible wall time on small hosts) and the
       worker's exit write wakes it instantly, so Domain.join has no
       tail *)
    let hb_stop = Atomic.make false in
    let hb =
      if heartbeat_us <= 0 then None
      else begin
        let rd, wr = Unix.pipe ~cloexec:true () in
        let d =
          Domain.spawn (fun () ->
              (* the heartbeat domain always runs on the real clock:
                 its job is to convince OTHER processes' real-clock
                 expiry checks that we are alive *)
              let rec beat () =
                if not (Atomic.get hb_stop) then
                  match
                    Unix.select [ rd ] [] []
                      (float_of_int heartbeat_us /. 1e6)
                  with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> beat ()
                  | _ :: _, _, _ -> ()   (* stop signalled *)
                  | [], _, _ ->
                    if not (Atomic.get hb_stop) then begin
                      (try
                         heartbeat ~path ~owner
                           ~deadline_us:(now_us () + ttl_us) ~sync ()
                       with _ -> ());
                      beat ()
                    end
              in
              beat ())
        in
        Some (d, rd, wr)
      end
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set hb_stop true;
        Option.iter
          (fun (d, rd, wr) ->
             (try ignore (Unix.write_substring wr "x" 0 1)
              with Unix.Unix_error _ -> ());
             Domain.join d;
             Unix.close rd;
             Unix.close wr)
          hb)
    @@ fun () ->
    let rec loop () =
      if stop () then begin
        emit (Obs.Event.Worker_event { owner; kind = "drain" });
        Drained
      end
      else
        match claim ~path ~owner ~now_us:(now_us ()) ~ttl_us ~sync () with
        | Error e -> failwith e
        | Ok Wait ->
          sleep_us poll_us;
          loop ()
        | Ok (Claimed { index; epoch; reclaimed_from }) ->
          emit
            (Obs.Event.Lease_claim
               { index; owner; epoch;
                 reclaimed = reclaimed_from <> None });
          Option.iter
            (fun dead ->
               emit
                 (Obs.Event.Lease_expired
                    { index; owner = dead; epoch = epoch - 1 }))
            reclaimed_from;
          (match task index with
           | payload ->
             complete ~path ~index ~payload ~sync ()
           | exception e ->
             (* hand the lease back so a peer can take over, then let
                the wreckage surface *)
             (try release ~path ~index ~owner ~epoch ~sync () with _ -> ());
             raise e);
          loop ()
        | Ok Drained ->
          emit (Obs.Event.Worker_event { owner; kind = "complete" });
          Complete
    in
    loop ()
end
