(** Lease-based multi-process work queue over a v2 {!Ldx_store.Store}
    file.

    The queue is nothing but the store file itself: every claim,
    heartbeat, release and outcome is one checksummed record appended
    with a single [write(2)] on an [O_APPEND] descriptor, and the
    queue's state is a deterministic fold ({!view_of}) over the journal
    in file order.  There is no coordinator process and no lock file —
    POSIX's guarantee that [O_APPEND] writes on a regular file are
    serialized is the only synchronization primitive.

    {2 Lease state machine}

    Each task is in one of three states, advanced by journal records in
    file order:

    {v
              l (epoch = next)                o
    Free ------------------------> Leased --------> Done
      ^                            |    |
      |     r (owner+epoch match)  |    | l (epoch = cur+1): reclaim;
      +----------------------------+    | the previous holder is
      ^                                 | charged with an expiry
      +---------------------------------+
    v}

    - a {e claim} ([l] record) wins iff its epoch is exactly the task's
      next epoch — for a [Free] task the stored [next_epoch], for a
      [Leased] task the holder's epoch + 1 (a {e reclaim} of an expired
      lease, charging the old holder; see {!view.expired_owners}).  Any
      other epoch is a lost race and is ignored, so when two workers
      append claims for the same [(index, epoch)], the first record in
      file order wins — this is the whole arbitration rule.
    - a {e release} ([r] record, matching owner and epoch) is a clean
      hand-back: the task returns to [Free] with the next epoch and the
      owner is {e not} charged.
    - an {e outcome} ([o] record) puts the task in [Done] forever; the
      first outcome in file order wins and duplicates are ignored, which
      is what makes "exactly once" hold even when a lease was wrongly
      reclaimed from a slow-but-alive worker.

    Claimants never trust their pre-append read: {!claim} appends the
    lease record, re-reads the file, and reports victory only if the
    fold says so.

    {2 Expiry and heartbeats}

    A lease carries a wall-clock deadline (µs since the epoch); a
    worker's [h] records extend every lease it holds.  A task is
    reclaimable once [now_us > deadline] where [deadline] is the max of
    the lease's own deadline and the holder's latest heartbeat.  Expiry
    is judged by the {e claimant's} clock at claim time — the fold
    itself is clock-free, so two processes reading the same file always
    agree on the state. *)

(** A live lease as seen by the fold: [deadline_us] is already the
    {e effective} deadline (lease deadline maxed with the holder's
    latest heartbeat). *)
type lease = { holder : string; epoch : int; deadline_us : int }

type task_state =
  | Free of { next_epoch : int }
  | Leased of lease
  | Done of { payload : string }  (** first outcome in file order *)

type view = {
  manifest : Ldx_store.Store.manifest;
  states : task_state array;      (** indexed by task *)
  expired_owners : string list array;
      (** per task: distinct owners whose lease was reclaimed without a
          release, in charge order — the input to quarantine
          escalation ("this task killed K distinct workers") *)
  torn : int;                     (** damaged records skipped on load *)
}

(** Fold a loaded store into the queue state (pure; clock-free). *)
val view_of : Ldx_store.Store.loaded -> view

(** [load ~path] = read + {!view_of}.  [Error] on unreadable files or
    manifest damage, like [Store.load]. *)
val load : path:string -> (view, string) result

val remaining : view -> int   (** tasks not yet [Done] *)

val is_complete : view -> bool

(** The [Done] payloads in task order ([(index, payload)], one per
    finished task). *)
val outcomes : view -> (int * string) list

(** {1 Appending}

    All writers go through [append]: one [write(2)] of
    ["\n" ^ entry_line e] on an [O_APPEND] descriptor.  The leading
    newline is the multi-writer tear discipline — it terminates
    whatever half-written line a killed peer left behind, so the
    damaged record fails its checksum in isolation instead of gluing
    onto ours.  [sync] additionally [fsync]s (power-loss durability).
    @raise Sys_error / [Unix.Unix_error] on I/O failure. *)
val append : path:string -> ?sync:bool -> Ldx_store.Store.entry -> unit

(** {1 The worker protocol} *)

type claim_result =
  | Claimed of { index : int; epoch : int; reclaimed_from : string option }
      (** the lease is ours; [reclaimed_from] names the expired holder
          we took it over from, if any *)
  | Wait     (** nothing claimable right now, but the queue isn't done
                 (live leases elsewhere) — poll again *)
  | Drained  (** every task is [Done] *)

(** [claim ~path ~owner ~now_us ~ttl_us ()] tries to win a lease on the
    first [Free]-or-expired task: append a claim with deadline
    [now_us + ttl_us], re-read, and loop (a lost race moves on to the
    next claimable task) until a claim sticks or nothing is claimable.
    A lease is expired once [now_us > deadline_us] (strict). *)
val claim :
  path:string ->
  owner:string ->
  now_us:int ->
  ttl_us:int ->
  ?sync:bool ->
  unit ->
  (claim_result, string) result

(** Extend every lease [owner] holds to [deadline_us]. *)
val heartbeat :
  path:string -> owner:string -> deadline_us:int -> ?sync:bool -> unit -> unit

(** Cleanly hand back a lease (graceful drain) — no expiry charge. *)
val release :
  path:string -> index:int -> owner:string -> epoch:int -> ?sync:bool ->
  unit -> unit

(** Journal a task's outcome (also retires its lease: [Done] wins over
    everything). *)
val complete :
  path:string -> index:int -> payload:string -> ?sync:bool -> unit -> unit

(** {1 Worker loop} *)

module Worker : sig
  type outcome =
    | Complete  (** queue drained: every task [Done] *)
    | Drained   (** [stop] asked us to quit; in-flight task finished *)

  (** [run ~path ~owner ~ttl_us ~heartbeat_us ~poll_us task] claims,
      executes [task index] (which returns the outcome payload),
      journals, and repeats until the queue is complete or [stop ()]
      turns true (checked between tasks — the in-flight task always
      finishes, which is what makes SIGTERM a clean drain).  While the
      loop runs, a background domain appends a heartbeat every
      [heartbeat_us] extending this owner's leases by [ttl_us]
      (disabled when [heartbeat_us <= 0]; the heartbeat domain always
      uses the real clock).  [Wait] sleeps [poll_us] between polls.

      [now_us]/[sleep_us] exist for deterministic tests; production
      callers take the defaults (real clock / [Unix.sleepf]).

      If [task] raises, the lease is released (so a peer can take
      over) and the exception propagates — but note the campaign
      runner contains task crashes itself, so a raise here means the
      worker is broken, not the task. *)
  val run :
    ?obs:Ldx_obs.Sink.t ->
    ?stop:(unit -> bool) ->
    ?now_us:(unit -> int) ->
    ?sleep_us:(int -> unit) ->
    ?sync:bool ->
    path:string ->
    owner:string ->
    ttl_us:int ->
    heartbeat_us:int ->
    poll_us:int ->
    (int -> string) ->
    outcome
end

(** µs since the Unix epoch, from the real clock. *)
val now_us : unit -> int
