(* Per-process view of the simulated OS: fd table + syscall dispatch.

   Each execution (master and slave) owns one [t].  The LDX engine decides
   which *result value* an execution observes (its own, or a copied one
   from the master when the syscall is aligned); this module only provides
   honest syscall semantics over the process's private VFS/network/clock
   state. *)

type fd_entry =
  | Fd_file of { path : string; mutable pos : int }
  | Fd_sock of string                          (* endpoint name *)

type t = {
  vfs : Vfs.t;
  net : Net.t;
  pid : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable clock : int;
  mutable rng : int;
  stdout : Buffer.t;
  mutable next_addr : int;                     (* bump allocator for malloc *)
  mutable malloc_log : int list;               (* requested sizes, reversed *)
  mutable retaddr_log : int list;              (* observed "return addrs" *)
  mutable exit_code : int option;
  mutable faults : Fault.state option;
  (* fault-injection state: the plan's per-execution occurrence
     counters.  None (the default) costs one pointer comparison at
     dispatch.  Cloned (counters preserved) so a forked process
     continues the fault schedule where the original was. *)
  mutable on_exec : (t -> string -> Sval.t list -> Sval.t -> unit) option;
  (* observability hook: fires after every successfully serviced
     syscall with its result; None (the default) costs one pointer
     comparison.  Installed per-process by the engine — never cloned. *)
  mutable on_fault : (t -> string -> int -> Fault.action -> unit) option;
  (* fires when a fault is injected: process, syscall, site, action.
     Like on_exec, installed by the engine and never cloned. *)
}

let create ?(pid = 1000) (w : World.t) : t =
  { vfs = World.instantiate_vfs w;
    net = World.instantiate_net w;
    pid;
    fds = Hashtbl.create 8;
    next_fd = 3;
    clock = w.World.clock_origin;
    rng = (if w.World.rng_seed = 0 then 1 else w.World.rng_seed);
    stdout = Buffer.create 64;
    next_addr = 0x1000_0000;
    malloc_log = [];
    retaddr_log = [];
    exit_code = None;
    faults = None;
    on_exec = None;
    on_fault = None }

let clone ?(pid = 1001) (t : t) : t =
  let fds = Hashtbl.create (Hashtbl.length t.fds) in
  Hashtbl.iter
    (fun fd e ->
       let e' =
         match e with
         | Fd_file { path; pos } -> Fd_file { path; pos }
         | Fd_sock name -> Fd_sock name
       in
       Hashtbl.replace fds fd e')
    t.fds;
  { vfs = Vfs.clone t.vfs;
    net = Net.clone t.net;
    pid;
    fds;
    next_fd = t.next_fd;
    clock = t.clock;
    rng = t.rng;
    stdout = Buffer.create 64;
    next_addr = t.next_addr;
    malloc_log = t.malloc_log;
    retaddr_log = t.retaddr_log;
    exit_code = None;
    faults = Option.map Fault.copy_state t.faults;
    on_exec = None;
    on_fault = None }

(* Exact deep copy for snapshotting: unlike [clone] (which models a
   freshly forked slave process — new pid, empty stdout, no exit code),
   [copy] preserves every observable field so a restored execution
   continues exactly where the original stood.  Hooks are process-local
   wiring and are never copied; consumers reinstall them. *)
let copy (t : t) : t =
  let fds = Hashtbl.create (max 8 (Hashtbl.length t.fds)) in
  Hashtbl.iter
    (fun fd e ->
       let e' =
         match e with
         | Fd_file { path; pos } -> Fd_file { path; pos }
         | Fd_sock name -> Fd_sock name
       in
       Hashtbl.replace fds fd e')
    t.fds;
  let stdout = Buffer.create (max 64 (Buffer.length t.stdout)) in
  Buffer.add_buffer stdout t.stdout;
  { vfs = Vfs.clone t.vfs;
    net = Net.clone t.net;
    pid = t.pid;
    fds;
    next_fd = t.next_fd;
    clock = t.clock;
    rng = t.rng;
    stdout;
    next_addr = t.next_addr;
    malloc_log = t.malloc_log;
    retaddr_log = t.retaddr_log;
    exit_code = t.exit_code;
    faults = Option.map Fault.copy_state t.faults;
    on_exec = None;
    on_fault = None }

exception Os_error of string

let alloc_fd t e =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd e;
  fd

let bad_args sys args =
  raise (Os_error (Printf.sprintf "syscall %s: bad arguments (%s)" sys
                     (Sval.list_to_string args)))

let next_rand t =
  t.rng <- (t.rng * 1103515245 + 12345) land 0x3FFFFFFF;
  t.rng

(* Syscalls handled by the OS layer.  Thread operations (lock, unlock,
   spawn, join, yield) are scheduler concerns and are handled by the VM. *)
let handles = function
  | "open" | "creat" | "read" | "write" | "close" | "seek" | "socket"
  | "recv" | "send" | "mkdir" | "unlink" | "rename" | "stat" | "readdir"
  | "time" | "rand" | "getpid" | "print" | "exit" | "malloc" | "free"
  | "retaddr" -> true
  | _ -> false

let exec_raw (t : t) (sys : string) (args : Sval.t list) : Sval.t =
  match (sys, args) with
  | "open", [ S path ] ->
    (match Vfs.lookup t.vfs path with
     | Some (Vfs.File _) -> I (alloc_fd t (Fd_file { path; pos = 0 }))
     | Some Vfs.Dir | None -> I (-1))
  | "creat", [ S path ] ->
    (match Vfs.create_file t.vfs path with
     | Ok () -> I (alloc_fd t (Fd_file { path; pos = 0 }))
     | Error _ -> I (-1))
  | "read", [ I fd; I n ] ->
    (match Hashtbl.find_opt t.fds fd with
     | Some (Fd_file f) ->
       (match Vfs.read_file t.vfs f.path with
        | Ok data ->
          let avail = max 0 (String.length data - f.pos) in
          let k = min (max n 0) avail in
          let chunk = String.sub data f.pos k in
          f.pos <- f.pos + k;
          S chunk
        | Error _ -> S "")
     | Some (Fd_sock name) ->
       (match Net.find t.net name with
        | Some e -> S (Net.recv e)
        | None -> S "")
     | None -> S "")
  | "write", [ I fd; S data ] ->
    (match Hashtbl.find_opt t.fds fd with
     | Some (Fd_file f) ->
       (match Vfs.append_file t.vfs f.path data with
        | Ok () -> I (String.length data)
        | Error _ -> I (-1))
     | Some (Fd_sock name) -> I (Net.send (Net.connect t.net name) data)
     | None ->
       if fd = 1 || fd = 2 then begin
         Buffer.add_string t.stdout data;
         I (String.length data)
       end
       else I (-1))
  | "close", [ I fd ] ->
    Hashtbl.remove t.fds fd;
    I 0
  | "seek", [ I fd; I pos ] ->
    (match Hashtbl.find_opt t.fds fd with
     | Some (Fd_file f) -> f.pos <- max 0 pos; I pos
     | Some (Fd_sock _) | None -> I (-1))
  | "socket", [ S name ] ->
    ignore (Net.connect t.net name);
    I (alloc_fd t (Fd_sock name))
  | "recv", [ I fd ] ->
    (match Hashtbl.find_opt t.fds fd with
     | Some (Fd_sock name) ->
       (match Net.find t.net name with
        | Some e -> S (Net.recv e)
        | None -> S "")
     | Some (Fd_file _) | None -> S "")
  | "send", [ I fd; S data ] ->
    (match Hashtbl.find_opt t.fds fd with
     | Some (Fd_sock name) -> I (Net.send (Net.connect t.net name) data)
     | Some (Fd_file _) | None -> I (-1))
  | "mkdir", [ S path ] ->
    (match Vfs.mkdir t.vfs path with Ok () -> I 0 | Error _ -> I (-1))
  | "unlink", [ S path ] ->
    (match Vfs.unlink t.vfs path with Ok () -> I 0 | Error _ -> I (-1))
  | "rename", [ S a; S b ] ->
    (match Vfs.rename t.vfs a b with Ok () -> I 0 | Error _ -> I (-1))
  | "stat", [ S path ] ->
    (match Vfs.size t.vfs path with Ok n -> I n | Error _ -> I (-1))
  | "readdir", [ S path ] ->
    (match Vfs.readdir t.vfs path with
     | Ok names -> S (String.concat ";" names)
     | Error _ -> S "")
  | "time", [] ->
    t.clock <- t.clock + 7;
    I t.clock
  | "rand", [] -> I (next_rand t)
  | "getpid", [] -> I t.pid
  | "print", [ S data ] ->
    Buffer.add_string t.stdout data;
    I (String.length data)
  | "print", [ I n ] ->
    let data = string_of_int n in
    Buffer.add_string t.stdout data;
    I (String.length data)
  | "exit", [ I code ] ->
    t.exit_code <- Some code;
    I code
  | "malloc", [ I size ] ->
    t.malloc_log <- size :: t.malloc_log;
    let addr = t.next_addr in
    t.next_addr <- t.next_addr + max 16 size;
    I addr
  | "free", [ I _ ] -> I 0
  | "retaddr", [ I v ] ->
    t.retaddr_log <- v :: t.retaddr_log;
    I v
  | "retaddr", [ S s ] ->
    let v = Hashtbl.hash s in
    t.retaddr_log <- v :: t.retaddr_log;
    I v
  | _ -> bad_args sys args

(* Canonical error value for a transient failure: string-returning
   syscalls report "no data", the rest report -1. *)
let transient_result = function
  | "read" | "recv" | "readdir" -> Sval.S ""
  | _ -> Sval.I (-1)

(* Apply a fault decision.  Actions that make no sense for the syscall
   (Short_read on "time", Drop_message on "open", ...) fall back to
   honest execution — the plan still counted the occurrence, keeping
   schedules aligned across executions regardless of rule sanity. *)
let apply_fault (t : t) (sys : string) (args : Sval.t list)
    (a : Fault.action) : Sval.t =
  match (a, sys, args) with
  | Fault.Error_return v, _, _ -> v
  | Fault.Transient, _, _ -> transient_result sys
  | Fault.Clock_skew d, _, _ ->
    t.clock <- t.clock + d;
    exec_raw t sys args
  | Fault.Short_read k, "read", [ I fd; I n ] ->
    exec_raw t "read" [ I fd; I (min (max k 0) (max n 0)) ]
  | Fault.Short_read k, "recv", _ ->
    (* the full message is consumed; the tail is lost on the wire *)
    (match exec_raw t sys args with
     | S s -> S (String.sub s 0 (min (max k 0) (String.length s)))
     | r -> r)
  | Fault.Drop_message, "recv", _ ->
    (* consume the message so the stream position advances, lose the data *)
    ignore (exec_raw t sys args);
    S ""
  | Fault.Drop_message, "send", [ _; S data ] ->
    (* claimed successful, never delivered *)
    I (String.length data)
  | (Fault.Short_read _ | Fault.Drop_message), _, _ -> exec_raw t sys args

let exec ?(site = -1) (t : t) (sys : string) (args : Sval.t list) : Sval.t =
  let r =
    match t.faults with
    | None -> exec_raw t sys args
    | Some st ->
      (match Fault.decide st ~sys ~site with
       | None -> exec_raw t sys args
       | Some a ->
         (match t.on_fault with Some f -> f t sys site a | None -> ());
         apply_fault t sys args a)
  in
  (match t.on_exec with Some f -> f t sys args r | None -> ());
  r

let set_faults (t : t) (p : Fault.t option) : unit =
  t.faults <-
    (match p with
     | None -> None
     | Some p when Fault.is_empty p -> None
     | Some p -> Some (Fault.instantiate p))

let faults_injected (t : t) : int =
  match t.faults with None -> 0 | Some st -> Fault.injected st

let stdout_contents t = Buffer.contents t.stdout
let exited t = t.exit_code <> None

(* The resource a syscall touches, for taint tracking: "path:<p>" for
   files/directories, "ep:<name>" for network endpoints. *)
let resource_of_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some (Fd_file { path; _ }) -> Some ("path:" ^ path)
  | Some (Fd_sock name) -> Some ("ep:" ^ name)
  | None -> None

let resource_of_syscall t (sys : string) (args : Sval.t list) : string list =
  let entry path = [ "path:" ^ Vfs.normalize path ] in
  (* namespace-changing operations also touch the parent directory: a
     directory created/removed in only one execution must taint the
     parent so later listings decouple (Sec. 7) *)
  let entry_and_parent path =
    let path = Vfs.normalize path in
    [ "path:" ^ path; "path:" ^ Vfs.parent path ]
  in
  match (sys, args) with
  | ("open" | "stat" | "readdir"), S path :: _ -> entry path
  | ("creat" | "unlink" | "mkdir"), S path :: _ -> entry_and_parent path
  | "rename", [ S a; S b ] -> entry_and_parent a @ entry_and_parent b
  | ("read" | "write" | "seek" | "close"), I fd :: _ ->
    (match resource_of_fd t fd with Some r -> [ r ] | None -> [])
  | ("recv" | "send"), I fd :: _ ->
    (match resource_of_fd t fd with Some r -> [ r ] | None -> [])
  | "socket", [ S name ] -> [ "ep:" ^ name ]
  | _ -> []
