(** Per-process view of the simulated OS: fd table + syscall dispatch.

    Each execution (master, slave, taint baseline) owns one [t].  The LDX
    engine decides which *result value* an execution observes (its own,
    or one copied from the master when aligned); this module only
    provides honest syscall semantics over the process's private state. *)

type fd_entry =
  | Fd_file of { path : string; mutable pos : int }
  | Fd_sock of string        (** endpoint name *)

type t = {
  vfs : Vfs.t;
  net : Net.t;
  pid : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable clock : int;
  mutable rng : int;
  stdout : Buffer.t;
  mutable next_addr : int;        (** bump allocator for [malloc] *)
  mutable malloc_log : int list;  (** requested sizes, most recent first *)
  mutable retaddr_log : int list; (** observed "return addresses" *)
  mutable exit_code : int option;
  mutable faults : Fault.state option;
      (** fault-injection state (per-execution occurrence counters);
          [None], the default, costs one pointer comparison at dispatch.
          Propagated by {!clone} with counters preserved. *)
  mutable on_exec : (t -> string -> Sval.t list -> Sval.t -> unit) option;
      (** observability hook: fires after every successfully serviced
          syscall with its result ([None], the default, costs one
          pointer comparison); installed per-process by the engine and
          never propagated by {!clone} *)
  mutable on_fault : (t -> string -> int -> Fault.action -> unit) option;
      (** fires when a fault is injected (process, syscall, site,
          action); installed by the engine, never propagated by
          {!clone} *)
}

(** Instantiate a world.  [pid] defaults to 1000 (the engine uses 1001
    for the slave, 2000 for taint baselines). *)
val create : ?pid:int -> World.t -> t

(** Deep copy (fds, filesystem, network, clock, rng); stdout starts
    empty.  Used to give the slave a private OS. *)
val clone : ?pid:int -> t -> t

(** Exact deep copy for snapshotting: unlike {!clone}, preserves pid,
    stdout contents and exit code, so a restored execution continues
    exactly where the original stood.  Hooks are never copied;
    consumers reinstall them after restore. *)
val copy : t -> t

(** Raised on malformed syscall invocations (wrong arity/types). *)
exception Os_error of string

(** Does this module service the syscall?  Thread operations (lock,
    unlock, spawn, join, yield, setjmp, longjmp) are the VM's business. *)
val handles : string -> bool

(** Execute a syscall against this process's state.  [site] is the
    static call-site id used by fault rules with a [#SITE] key
    (default [-1]: no site information).  If a fault plan is installed
    ({!set_faults}) it is consulted first; a firing rule replaces or
    perturbs the honest result.
    @raise Os_error on malformed invocations. *)
val exec : ?site:int -> t -> string -> Sval.t list -> Sval.t

(** Install (or clear) a fault plan; instantiates fresh per-execution
    occurrence counters.  An empty plan clears.  Both the master's and a
    from-scratch slave's OS instantiate the SAME immutable plan, so
    their fault schedules agree — the decoupled-replay half of the
    soundness argument (DESIGN.md, "Fault model"). *)
val set_faults : t -> Fault.t option -> unit

(** Number of faults injected so far in this process. *)
val faults_injected : t -> int

val stdout_contents : t -> string
val exited : t -> bool

(** The taint-tracking resource of an open fd: ["path:<p>"] or
    ["ep:<name>"]. *)
val resource_of_fd : t -> int -> string option

(** Resources a syscall touches, resolving fd arguments through this
    process's fd table — the keys of Sec. 7's resource tainting. *)
val resource_of_syscall : t -> string -> Sval.t list -> string list
