(** Per-process view of the simulated OS: fd table + syscall dispatch.

    Each execution (master, slave, taint baseline) owns one [t].  The LDX
    engine decides which *result value* an execution observes (its own,
    or one copied from the master when aligned); this module only
    provides honest syscall semantics over the process's private state. *)

type fd_entry =
  | Fd_file of { path : string; mutable pos : int }
  | Fd_sock of string        (** endpoint name *)

type t = {
  vfs : Vfs.t;
  net : Net.t;
  pid : int;
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable clock : int;
  mutable rng : int;
  stdout : Buffer.t;
  mutable next_addr : int;        (** bump allocator for [malloc] *)
  mutable malloc_log : int list;  (** requested sizes, most recent first *)
  mutable retaddr_log : int list; (** observed "return addresses" *)
  mutable exit_code : int option;
  mutable on_exec : (t -> string -> Sval.t list -> Sval.t -> unit) option;
      (** observability hook: fires after every successfully serviced
          syscall with its result ([None], the default, costs one
          pointer comparison); installed per-process by the engine and
          never propagated by {!clone} *)
}

(** Instantiate a world.  [pid] defaults to 1000 (the engine uses 1001
    for the slave, 2000 for taint baselines). *)
val create : ?pid:int -> World.t -> t

(** Deep copy (fds, filesystem, network, clock, rng); stdout starts
    empty.  Used to give the slave a private OS. *)
val clone : ?pid:int -> t -> t

(** Raised on malformed syscall invocations (wrong arity/types). *)
exception Os_error of string

(** Does this module service the syscall?  Thread operations (lock,
    unlock, spawn, join, yield, setjmp, longjmp) are the VM's business. *)
val handles : string -> bool

(** Execute a syscall against this process's state.
    @raise Os_error on malformed invocations. *)
val exec : t -> string -> Sval.t list -> Sval.t

val stdout_contents : t -> string
val exited : t -> bool

(** The taint-tracking resource of an open fd: ["path:<p>"] or
    ["ep:<name>"]. *)
val resource_of_fd : t -> int -> string option

(** Resources a syscall touches, resolving fd arguments through this
    process's fd table — the keys of Sec. 7's resource tainting. *)
val resource_of_syscall : t -> string -> Sval.t list -> string list
