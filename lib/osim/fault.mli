(** Deterministic environment fault injection.

    An immutable, seeded fault {!t} describes how the simulated OS
    misbehaves: rules keyed by syscall name / static site / nth dynamic
    occurrence, each carrying an {!action}.  Instantiating the plan
    yields a per-execution {!state} holding the dynamic occurrence
    counters, so replaying the same plan over the same syscall stream
    fires the same faults — the property the LDX false-positive argument
    rests on (see DESIGN.md, "Fault model").  Probabilistic rules use a
    hash of (seed, rule index, occurrence), never a live RNG, so plans
    are bit-reproducible across executions, domains and processes. *)

type action =
  | Error_return of Sval.t
      (** replace the result with this value; the syscall is not executed *)
  | Short_read of int
      (** cap read/recv payloads at this many bytes *)
  | Transient
      (** EINTR-style failure: canonical error value ([S ""] for
          string-returning syscalls, [I (-1)] otherwise), not executed *)
  | Drop_message
      (** recv: the message is consumed but lost (empty result);
          send: claimed successful but never delivered *)
  | Clock_skew of int
      (** advance the OS clock by this delta, then execute honestly *)

type rule = {
  f_sys : string option;   (** syscall name; [None] matches any *)
  f_site : int option;     (** static call-site id; [None] matches any *)
  f_nth : int option;      (** fire only on the nth dynamic match (1-based) *)
  f_prob : int option;     (** fire on ~p% of matches (seeded coin) *)
  f_action : action;
}

val rule : ?sys:string -> ?site:int -> ?nth:int -> ?prob:int -> action -> rule

(** An immutable fault plan: ordered rules + coin seed.  Safe to share
    across executions and domains. *)
type t = {
  rules : rule list;
  seed : int;
}

val plan : ?seed:int -> rule list -> t
val empty : t
val is_empty : t -> bool

(** Per-execution dynamic state: the plan plus its occurrence counters. *)
type state

(** Fresh state with zeroed counters — what both the master's OS and a
    from-scratch slave replay get, so their fault schedules agree. *)
val instantiate : t -> state

(** The plan this state was instantiated from. *)
val plan_of : state -> t

(** Mid-execution copy (counters preserved): a cloned process continues
    the fault schedule exactly where the original was. *)
val copy_state : state -> state

(** Number of faults injected so far in this execution. *)
val injected : state -> int

(** The action to inject for this dynamic syscall, or [None] to service
    it honestly.  Advances every matching rule's occurrence counter; the
    first firing rule in plan order wins. *)
val decide : state -> sys:string -> site:int -> action option

val action_to_string : action -> string
val rule_to_string : rule -> string
val to_string : t -> string

(** Parse a plan spec: comma-separated rules of the form
    [ACTION:SYS[@NTH][#SITE][%PROB]] where ACTION is
    [error[=INT]] | [eof] | [short=K] | [transient] | [drop] | [skew=D]
    and SYS may be [*] for any syscall.  Example:
    ["short=2:read@1,drop:recv%50,skew=100:time"]. *)
val parse : ?seed:int -> string -> (t, string) result

(** A small random plan drawn from type-plausible (syscall, action)
    templates — the chaos-mode generator. *)
val random : rand:Random.State.t -> unit -> t
