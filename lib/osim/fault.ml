(* Deterministic environment fault injection.

   A fault plan is an immutable, seeded description of how the simulated
   OS misbehaves: rules keyed by syscall name / static site / nth dynamic
   occurrence, each carrying an action (error return, short read,
   transient failure, dropped network message, clock skew).  A plan is
   instantiated into a per-execution [state] holding the dynamic
   occurrence counters, so the SAME plan replayed over the same syscall
   stream fires the SAME faults — the property the LDX false-positive
   argument rests on: the master records faulted outcomes, a coupled
   slave copies them, and a decoupled slave re-executing privately
   replays the identical plan from its own fresh counters.

   Probabilistic rules are derandomised: the coin is a hash of
   (plan seed, rule index, occurrence count), never a live RNG, so a
   "30% of recvs fail" plan is bit-reproducible across executions,
   domains and processes. *)

type action =
  | Error_return of Sval.t      (* replace the result; syscall not executed *)
  | Short_read of int           (* cap read/recv payloads at k bytes *)
  | Transient                   (* EINTR-style: canonical error, not executed *)
  | Drop_message                (* recv: message lost; send: claimed, not delivered *)
  | Clock_skew of int           (* advance the OS clock, then execute honestly *)

type rule = {
  f_sys : string option;        (* syscall name; None matches any *)
  f_site : int option;          (* static site id; None matches any *)
  f_nth : int option;           (* only the nth dynamic match (1-based) *)
  f_prob : int option;          (* fire on ~p% of matches (seeded coin) *)
  f_action : action;
}

let rule ?sys ?site ?nth ?prob action =
  { f_sys = sys; f_site = site; f_nth = nth; f_prob = prob; f_action = action }

type t = {
  rules : rule list;
  seed : int;
}

let plan ?(seed = 0) rules = { rules; seed }
let empty = { rules = []; seed = 0 }
let is_empty p = p.rules = []

(* ------------------------------------------------------------------ *)
(* Per-execution state.                                                *)

type state = {
  splan : t;
  counts : int array;           (* per-rule dynamic match counts *)
  mutable injected : int;
}

let instantiate (p : t) : state =
  { splan = p; counts = Array.make (List.length p.rules) 0; injected = 0 }

let plan_of (st : state) : t = st.splan

(* Mid-execution copy: same plan, same occurrence counters — a cloned
   process continues the fault schedule exactly where the original was. *)
let copy_state (st : state) : state =
  { splan = st.splan; counts = Array.copy st.counts; injected = st.injected }

let injected st = st.injected

(* Deterministic coin in [0, 100) from (seed, rule index, occurrence). *)
let coin ~seed ~idx ~count =
  let mix =
    (seed * 0x9E3779B1) lxor (idx * 0x85EBCA6B) lxor (count * 0xC2B2AE35)
  in
  (mix land 0x3FFFFFFF) mod 100

(* The action to inject for this dynamic syscall, advancing every
   matching rule's occurrence counter (no short-circuit: counters must
   see each match even when an earlier rule already fired).  The first
   firing rule, in plan order, wins.  [None] = service honestly. *)
let decide (st : state) ~(sys : string) ~(site : int) : action option =
  let fired = ref None in
  List.iteri
    (fun i r ->
       let matches =
         (match r.f_sys with None -> true | Some s -> String.equal s sys)
         && (match r.f_site with None -> true | Some s -> s = site)
       in
       if matches then begin
         let c = st.counts.(i) + 1 in
         st.counts.(i) <- c;
         let nth_ok = match r.f_nth with None -> true | Some n -> c = n in
         let prob_ok =
           match r.f_prob with
           | None -> true
           | Some p -> coin ~seed:st.splan.seed ~idx:i ~count:c < p
         in
         if nth_ok && prob_ok && !fired = None then fired := Some r.f_action
       end)
    st.splan.rules;
  (match !fired with Some _ -> st.injected <- st.injected + 1 | None -> ());
  !fired

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let action_to_string = function
  | Error_return (Sval.I n) -> Printf.sprintf "error=%d" n
  | Error_return (Sval.S s) -> Printf.sprintf "error=%S" s
  | Short_read k -> Printf.sprintf "short=%d" k
  | Transient -> "transient"
  | Drop_message -> "drop"
  | Clock_skew d -> Printf.sprintf "skew=%d" d

let rule_to_string (r : rule) =
  String.concat ""
    [ action_to_string r.f_action;
      ":";
      (match r.f_sys with Some s -> s | None -> "*");
      (match r.f_nth with Some n -> Printf.sprintf "@%d" n | None -> "");
      (match r.f_site with Some s -> Printf.sprintf "#%d" s | None -> "");
      (match r.f_prob with Some p -> Printf.sprintf "%%%d" p | None -> "") ]

let to_string (p : t) =
  Printf.sprintf "seed=%d %s" p.seed
    (String.concat "," (List.map rule_to_string p.rules))

(* ------------------------------------------------------------------ *)
(* Parsing: ACTION ':' SYS ['@'NTH] ['#'SITE] ['%'PROB], comma-separated.
   ACTION is error[=INT] | short=K | transient | drop | skew=D.
   SYS may be '*' (any syscall).  Example:
     short=2:read@1,drop:recv%50,skew=100:time                         *)

let parse_int ~what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_action (s : string) : (action, string) result =
  let name, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match (name, arg) with
  | "error", None -> Ok (Error_return (Sval.I (-1)))
  | "error", Some v ->
    Result.map (fun n -> Error_return (Sval.I n)) (parse_int ~what:"error" v)
  | "eof", None -> Ok (Error_return (Sval.S ""))
  | "short", Some v -> Result.map (fun k -> Short_read k) (parse_int ~what:"short" v)
  | "short", None -> Error "short: missing byte count (short=K)"
  | "transient", None -> Ok Transient
  | "drop", None -> Ok Drop_message
  | "skew", Some v -> Result.map (fun d -> Clock_skew d) (parse_int ~what:"skew" v)
  | "skew", None -> Error "skew: missing cycle delta (skew=D)"
  | _ -> Error (Printf.sprintf "unknown fault action %S" s)

let parse_rule (s : string) : (rule, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault rule %S: expected ACTION:SYSCALL" s)
  | Some i ->
    let act_s = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match parse_action act_s with
     | Error e -> Error e
     | Ok action ->
       (* split the target part on '@', '#', '%' suffixes, in any order *)
       let sys = Buffer.create 8 in
       let nth = ref None and site = ref None and prob = ref None in
       let err = ref None in
       let n = String.length rest in
       let rec go j =
         if j >= n || !err <> None then ()
         else
           match rest.[j] with
           | ('@' | '#' | '%') as c ->
             let stop =
               let rec find k =
                 if k >= n then k
                 else match rest.[k] with '@' | '#' | '%' -> k | _ -> find (k + 1)
               in
               find (j + 1)
             in
             let v = String.sub rest (j + 1) (stop - j - 1) in
             (match parse_int ~what:(String.make 1 c) v with
              | Error e -> err := Some e
              | Ok v ->
                (match c with
                 | '@' -> nth := Some v
                 | '#' -> site := Some v
                 | _ -> prob := Some v));
             go stop
           | c ->
             Buffer.add_char sys c;
             go (j + 1)
       in
       go 0;
       (match !err with
        | Some e -> Error (Printf.sprintf "fault rule %S: %s" s e)
        | None ->
          let sys =
            match Buffer.contents sys with "" | "*" -> None | s -> Some s
          in
          Ok { f_sys = sys; f_site = !site; f_nth = !nth; f_prob = !prob;
               f_action = action }))

let parse ?(seed = 0) (s : string) : (t, string) result =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (plan ~seed (List.rev acc))
    | p :: rest ->
      (match parse_rule (String.trim p) with
       | Ok r -> go (r :: acc) rest
       | Error e -> Error e)
  in
  go [] parts

(* ------------------------------------------------------------------ *)
(* Chaos generator: a small random plan over the common syscall
   vocabulary, with type-plausible error values (string-returning
   syscalls get string errors) so injected results exercise the engine
   rather than just trapping the program on the first use. *)

let templates =
  [| rule ~sys:"recv" Drop_message;
     rule ~sys:"recv" (Short_read 1);
     rule ~sys:"recv" Transient;
     rule ~sys:"recv" (Error_return (Sval.S ""));
     rule ~sys:"read" (Short_read 2);
     rule ~sys:"read" Transient;
     rule ~sys:"open" (Error_return (Sval.I (-1)));
     rule ~sys:"send" Drop_message;
     rule ~sys:"send" (Error_return (Sval.I (-1)));
     rule ~sys:"write" (Error_return (Sval.I (-1)));
     rule ~sys:"time" (Clock_skew 997);
     rule ~sys:"rand" (Error_return (Sval.I 0));
     rule ~sys:"stat" (Error_return (Sval.I (-1))) |]

let random ~(rand : Random.State.t) () : t =
  let n_rules = 1 + Random.State.int rand 3 in
  let pick () =
    let base = templates.(Random.State.int rand (Array.length templates)) in
    let nth =
      match Random.State.int rand 3 with
      | 0 -> Some (1 + Random.State.int rand 3)
      | _ -> None
    in
    let prob =
      match Random.State.int rand 3 with
      | 0 -> Some (25 + (25 * Random.State.int rand 3))
      | _ -> None
    in
    { base with f_nth = nth; f_prob = prob }
  in
  plan ~seed:(Random.State.int rand 0x3FFFFFFF)
    (List.init n_rules (fun _ -> pick ()))
