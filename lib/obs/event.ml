(* Typed observability events.  Flat payloads only — see the interface
   for why this module must not depend on the rest of ldx. *)

type side = Master | Slave

let side_to_string = function Master -> "master" | Slave -> "slave"

type phase = Parse | Lower | Instrument | Master_run | Slave_run | Final_state

let phase_to_string = function
  | Parse -> "parse"
  | Lower -> "lower"
  | Instrument -> "instrument"
  | Master_run -> "master-run"
  | Slave_run -> "slave-run"
  | Final_state -> "final-state"

type decision =
  | D_copied
  | D_sink_match
  | D_args_differ
  | D_path_diff
  | D_slave_only
  | D_master_only
  | D_decoupled

let decision_to_string = function
  | D_copied -> "copied"
  | D_sink_match -> "sink-match"
  | D_args_differ -> "args-differ"
  | D_path_diff -> "path-diff"
  | D_slave_only -> "slave-only"
  | D_master_only -> "master-only"
  | D_decoupled -> "decoupled"

let decision_coupled = function
  | D_copied | D_sink_match -> true
  | D_args_differ | D_path_diff | D_slave_only | D_master_only | D_decoupled ->
    false

(* Structured failure taxonomy over an execution's trap message.  The
   trap field is a free-form string owned by the VM/engine; this is the
   single place that maps it onto a closed set of classes, so every
   consumer (campaign render, CLIs, metrics counters) agrees. *)
let trap_class = function
  | None -> "ok"
  | Some msg ->
    let has_prefix p =
      String.length msg >= String.length p
      && String.sub msg 0 (String.length p) = p
    in
    if has_prefix "fuel exhausted" then "fuel"
    else if has_prefix "deadlock" then "deadlock"
    else if has_prefix "os-error" then "os-error"
    else "vm-trap"

type t =
  | Phase_begin of phase
  | Phase_end of phase
  | Syscall of {
      side : side;
      tid : int;
      sys : string;
      site : int;
      pos : string;
      ts : int;
      dur : int;
    }
  | Os_call of { side : side; pid : int; sys : string; clock : int }
  | Couple of {
      tid : int;
      pos : string;
      decision : decision;
      sink : bool;
      master_sys : string option;
      slave_sys : string option;
      master_ts : int;
      slave_ts : int;
    }
  | Divergence of { case : int; kind : string; sys : string; site : int; pos : string }
  | Mutation of { sys : string; site : int; pos : string; before : string; after : string }
  | Barrier_wait of { side : side; tid : int; loop : int; ts : int; dur : int }
  | Cnt_sample of { side : side; value : int }
  | Run_summary of {
      side : side;
      cycles : int;
      steps : int;
      syscalls : int;
      cnt_instrs : int;
      trap : string option;
    }
  | Fault_injected of { side : side; sys : string; site : int; action : string }
  | Task_done of {
      label : string;
      status : string;
      attempts : int;
      exn : string option;
    }
  | Schedule_decision of {
      side : side;
      index : int;
      chosen : int;
      runnable : int;
      quantum : int;
      ts : int;
    }
  | Preemption of { side : side; index : int; chosen : int; ts : int }
  | Campaign_plan of { mode : string; jobs : int; tasks : int; est_steps : int }
  | Checkpoint of { path : string; tasks : int; journaled : int }
  | Resume of {
      path : string;
      tasks : int;
      replayed : int;
      rerun : int;
      torn : int;
    }
  | Quarantine of { label : string; attempts : int; exn : string }
  | Task_begin of { label : string; index : int }
  | Task_timing of {
      label : string;
      index : int;
      queue_us : int;
          (* wall-clock microseconds between campaign fan-out start and
             the task's first attempt (nondeterministic — never rendered
             into traces or goldens) *)
      run_us : int;   (* wall-clock microseconds spent running attempts *)
      wall_cycles : int;
          (* deterministic virtual wall of the task's result, 0 for
             tasks without a result (crashed/quarantined) *)
    }
  | Campaign_progress of {
      completed : int;
      total : int;
      cycles_done : int;   (* sum of wall_cycles over completed tasks *)
      eta_cycles : int;
          (* estimated remaining virtual cycles (mean-based; at jobs>1
             the completion order makes this nondeterministic) *)
    }
  | Lease_claim of {
      index : int;
      owner : string;
      epoch : int;
      reclaimed : bool;   (* taken over from an expired lease *)
    }
  | Lease_expired of { index : int; owner : string; epoch : int }
  | Worker_event of { owner : string; kind : string }
  | Snapshot_captured of {
      prefix_cycles : int;     (* slave clock at the decouple point *)
      prefix_steps : int;
      prefix_syscalls : int;   (* syscalls serviced in the shared prefix *)
    }
  | Snapshot_restored of {
      label : string;          (* task whose suffix ran from the snapshot *)
      prefix_cycles : int;     (* inherited from the snapshot *)
      suffix_cycles : int;     (* cycles the suffix added after restore *)
    }

let to_string = function
  | Phase_begin p -> Printf.sprintf "phase-begin %s" (phase_to_string p)
  | Phase_end p -> Printf.sprintf "phase-end %s" (phase_to_string p)
  | Syscall { side; tid; sys; site; pos; ts; dur } ->
    Printf.sprintf "syscall %s t%d %s@%d pos=%s ts=%d dur=%d"
      (side_to_string side) tid sys site pos ts dur
  | Os_call { side; pid; sys; clock } ->
    Printf.sprintf "os-call %s pid=%d %s clock=%d" (side_to_string side) pid
      sys clock
  | Couple { tid; pos; decision; sink; master_sys; slave_sys; master_ts; slave_ts } ->
    Printf.sprintf "couple t%d %s pos=%s%s master=%s@%d slave=%s@%d" tid
      (decision_to_string decision) pos
      (if sink then " sink" else "")
      (Option.value master_sys ~default:"-") master_ts
      (Option.value slave_sys ~default:"-") slave_ts
  | Divergence { case; kind; sys; site; pos } ->
    Printf.sprintf "divergence case%d %s %s@%d pos=%s" case kind sys site pos
  | Mutation { sys; site; pos; before; after } ->
    Printf.sprintf "mutation %s@%d pos=%s %s -> %s" sys site pos before after
  | Barrier_wait { side; tid; loop; ts; dur } ->
    Printf.sprintf "barrier %s t%d L%d ts=%d dur=%d" (side_to_string side) tid
      loop ts dur
  | Cnt_sample { side; value } ->
    Printf.sprintf "cnt-sample %s %d" (side_to_string side) value
  | Run_summary { side; cycles; steps; syscalls; cnt_instrs; trap } ->
    Printf.sprintf "run-summary %s cycles=%d steps=%d syscalls=%d cnt=%d%s"
      (side_to_string side) cycles steps syscalls cnt_instrs
      (match trap with None -> "" | Some m -> " trap=" ^ m)
  | Fault_injected { side; sys; site; action } ->
    Printf.sprintf "fault %s %s@%d %s" (side_to_string side) sys site action
  | Task_done { label; status; attempts; exn } ->
    Printf.sprintf "task-done %s %s attempts=%d%s" label status attempts
      (match exn with None -> "" | Some e -> " exn=" ^ e)
  | Schedule_decision { side; index; chosen; runnable; quantum; ts } ->
    Printf.sprintf "sched %s #%d t%d of %d q=%d ts=%d" (side_to_string side)
      index chosen runnable quantum ts
  | Preemption { side; index; chosen; ts } ->
    Printf.sprintf "preempt %s #%d -> t%d ts=%d" (side_to_string side) index
      chosen ts
  | Campaign_plan { mode; jobs; tasks; est_steps } ->
    Printf.sprintf "campaign-plan %s jobs=%d tasks=%d est=%d" mode jobs tasks
      est_steps
  | Checkpoint { path; tasks; journaled } ->
    Printf.sprintf "checkpoint %s tasks=%d journaled=%d" path tasks journaled
  | Resume { path; tasks; replayed; rerun; torn } ->
    Printf.sprintf "resume %s tasks=%d replayed=%d rerun=%d torn=%d" path
      tasks replayed rerun torn
  | Quarantine { label; attempts; exn } ->
    Printf.sprintf "quarantine %s attempts=%d exn=%s" label attempts exn
  | Task_begin { label; index } ->
    Printf.sprintf "task-begin #%d %s" index label
  | Task_timing { label; index; queue_us; run_us; wall_cycles } ->
    Printf.sprintf "task-timing #%d %s queue_us=%d run_us=%d wall_cycles=%d"
      index label queue_us run_us wall_cycles
  | Campaign_progress { completed; total; cycles_done; eta_cycles } ->
    Printf.sprintf "progress %d/%d cycles=%d eta=%d" completed total
      cycles_done eta_cycles
  | Lease_claim { index; owner; epoch; reclaimed } ->
    Printf.sprintf "lease #%d %s e%d%s" index owner epoch
      (if reclaimed then " reclaimed" else "")
  | Lease_expired { index; owner; epoch } ->
    Printf.sprintf "lease-expired #%d %s e%d" index owner epoch
  | Worker_event { owner; kind } -> Printf.sprintf "worker %s %s" owner kind
  | Snapshot_captured { prefix_cycles; prefix_steps; prefix_syscalls } ->
    Printf.sprintf "snapshot-captured prefix_cycles=%d steps=%d syscalls=%d"
      prefix_cycles prefix_steps prefix_syscalls
  | Snapshot_restored { label; prefix_cycles; suffix_cycles } ->
    Printf.sprintf "snapshot-restored %s prefix=%d suffix=%d" label
      prefix_cycles suffix_cycles
