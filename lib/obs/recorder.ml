(* Recording sink: event log + metrics fold.  See the interface for the
   counter schema. *)

type t = {
  mutable rev_events : Event.t list;
  mutable count : int;
  m : Metrics.t;
}

let create () = { rev_events = []; count = 0; m = Metrics.create () }

let side_key prefix side = prefix ^ "." ^ Event.side_to_string side

let absorb t (ev : Event.t) =
  let m = t.m in
  match ev with
  | Event.Phase_begin _ | Event.Phase_end _ -> ()
  | Event.Syscall { side; _ } -> Metrics.incr m (side_key "syscalls" side)
  | Event.Os_call { side; _ } -> Metrics.incr m (side_key "os_calls" side)
  | Event.Couple { decision; master_ts; slave_ts; _ } ->
    Metrics.incr m ("align." ^ Event.decision_to_string decision);
    if Event.decision_coupled decision then begin
      Metrics.incr m "engine.copies";
      if decision = Event.D_sink_match then Metrics.incr m "engine.sink_compares";
      if master_ts >= 0 then
        Metrics.observe m "couple_lag" (slave_ts - master_ts)
    end
  | Event.Divergence { case; _ } ->
    Metrics.incr m
      (if case >= 1 && case <= 3 then Printf.sprintf "divergence.case%d" case
       else "divergence.final-state")
  | Event.Mutation _ -> Metrics.incr m "engine.mutations"
  | Event.Barrier_wait { side; _ } -> Metrics.incr m (side_key "barriers" side)
  | Event.Cnt_sample { side; value } ->
    Metrics.observe m (side_key "dyn_cnt" side) value
  | Event.Run_summary { side; cycles; steps; syscalls; cnt_instrs; trap } ->
    let p = Event.side_to_string side in
    Metrics.set m (p ^ ".cycles") cycles;
    Metrics.set m (p ^ ".steps") steps;
    Metrics.set m (p ^ ".syscalls") syscalls;
    Metrics.set m (p ^ ".cnt_instrs") cnt_instrs;
    (let cls = Event.trap_class trap in
     if cls <> "ok" then Metrics.incr m ("failures." ^ p ^ "." ^ cls));
    let snap = Metrics.snapshot m in
    Metrics.set m "run.wall_cycles"
      (max (Metrics.counter snap "master.cycles")
         (Metrics.counter snap "slave.cycles"))
  | Event.Fault_injected { side; action; _ } ->
    Metrics.incr m (side_key "faults" side);
    (* counter per action kind: "faults.drop", "faults.short=2", ... keep
       just the action name before any '=' argument *)
    let kind =
      match String.index_opt action '=' with
      | Some i -> String.sub action 0 i
      | None -> action
    in
    Metrics.incr m ("faults." ^ kind)
  | Event.Task_done { status; attempts; _ } ->
    Metrics.incr m ("campaign." ^ status);
    (* retries = attempts beyond the first; tasks that needed any *)
    if attempts > 1 then begin
      Metrics.incr m "retry.tasks";
      Metrics.add m "retry.attempts" (attempts - 1)
    end
  | Event.Schedule_decision { side; runnable; quantum; _ } ->
    Metrics.incr m (side_key "sched.decisions" side);
    Metrics.observe m (side_key "sched.runnable" side) runnable;
    Metrics.observe m (side_key "sched.quantum" side) quantum
  | Event.Preemption { side; _ } ->
    Metrics.incr m (side_key "sched.preemptions" side)
  | Event.Campaign_plan { mode; jobs; tasks; _ } ->
    Metrics.incr m ("campaign.mode." ^ mode);
    Metrics.set m "campaign.jobs" jobs;
    Metrics.set m "campaign.tasks" tasks
  | Event.Checkpoint { journaled; _ } ->
    Metrics.incr m "store.checkpoints";
    Metrics.set m "store.journaled" journaled
  | Event.Resume { replayed; rerun; torn; _ } ->
    Metrics.incr m "store.resumes";
    Metrics.add m "store.replayed" replayed;
    Metrics.add m "store.rerun" rerun;
    if torn > 0 then Metrics.add m "store.torn" torn
  | Event.Quarantine { attempts; _ } ->
    Metrics.incr m "retry.quarantines";
    Metrics.observe m "retry.attempts_at_quarantine" attempts
  | Event.Task_begin _ -> Metrics.incr m "campaign.begun"
  | Event.Task_timing { queue_us; run_us; wall_cycles; _ } ->
    Metrics.observe m "campaign.queue_us" queue_us;
    Metrics.observe m "campaign.run_us" run_us;
    if wall_cycles > 0 then
      Metrics.observe m "campaign.wall_cycles" wall_cycles
  | Event.Campaign_progress { completed; cycles_done; eta_cycles; _ } ->
    Metrics.incr m "campaign.progress_events";
    Metrics.set m "campaign.completed" completed;
    Metrics.set m "campaign.cycles_done" cycles_done;
    Metrics.set m "campaign.eta_cycles" eta_cycles
  | Event.Lease_claim { reclaimed; _ } ->
    Metrics.incr m "queue.claims";
    if reclaimed then Metrics.incr m "queue.reclaims"
  | Event.Lease_expired _ -> Metrics.incr m "queue.expiries"
  | Event.Worker_event { kind; _ } -> Metrics.incr m ("service.worker." ^ kind)
  | Event.Snapshot_captured { prefix_cycles; _ } ->
    Metrics.incr m "snap.captured";
    Metrics.observe m "snap.prefix_cycles" prefix_cycles
  | Event.Snapshot_restored { suffix_cycles; _ } ->
    Metrics.incr m "snap.restored";
    Metrics.observe m "snap.suffix_cycles" suffix_cycles

let sink t =
  Sink.of_fn
    (fun ev ->
       t.rev_events <- ev :: t.rev_events;
       t.count <- t.count + 1;
       absorb t ev)

let events t = List.rev t.rev_events
let event_count t = t.count
let metrics t = t.m
let snapshot t = Metrics.snapshot t.m
