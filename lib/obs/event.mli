(** The typed event vocabulary of the observability layer.

    Events are deliberately flat — strings, ints and small enums only —
    so that this library sits below every other [ldx] component: the VM,
    the OS simulation and the engine all emit through {!Sink.t} without
    [Ldx_obs] depending on any of them.

    Timestamps ([ts], [dur], [clock]) are {e virtual cycles} from the
    engine's two-CPU cycle model (see [Ldx_vm.Cost] and DESIGN.md
    "Cycle model"), not wall time.  Master and slave each carry their
    own clock; the coupling rule fast-forwards the slave's clock past
    the producing master stamp on every copy, so the two clocks live on
    one shared virtual time axis — which is what makes the dual-timeline
    trace export meaningful. *)

type side = Master | Slave

val side_to_string : side -> string

(** Run phases, in the order [Engine.run_source] executes them. *)
type phase =
  | Parse          (** MiniC parsing + checking *)
  | Lower          (** AST to CFG lowering *)
  | Instrument     (** counter instrumentation (Sec. 4-6) *)
  | Master_run
  | Slave_run
  | Final_state    (** optional filesystem diff (future-work extension) *)

val phase_to_string : phase -> string

(** One slave-side alignment decision (mirrors
    [Engine.trace_action], but recorded unconditionally when a sink is
    installed, with both cycle stamps). *)
type decision =
  | D_copied       (** aligned non-sink; master outcome copied *)
  | D_sink_match   (** aligned sink, equal parameters *)
  | D_args_differ  (** paper case 3: aligned, different parameters *)
  | D_path_diff    (** paper case 2: same counter, different PC *)
  | D_slave_only   (** paper case 1: syscall appeared only in the slave *)
  | D_master_only  (** paper case 1: syscall disappeared in the slave *)
  | D_decoupled    (** tainted resource; slave executed privately *)

val decision_to_string : decision -> string

(** [true] when the decision coupled the pair (the slave consumed the
    master's outcome): exactly [D_copied] and [D_sink_match]. *)
val decision_coupled : decision -> bool

(** Structured failure taxonomy over an execution's trap message: one of
    ["ok"] (no trap), ["fuel"] (step budget exhausted), ["deadlock"],
    ["os-error"] (malformed syscall surfaced by the OS layer), or
    ["vm-trap"] (any other VM trap).  The single source of truth for
    classifying the free-form trap string — campaign render, the CLIs
    and the metrics counters all go through here. *)
val trap_class : string option -> string

(** In [Divergence], [case] is the paper's divergence-case number of the
    sink report kind: 1 for missing-in-either-execution, 2 for
    different-syscall, 3 for args-differ, 0 for the final-state
    extension kinds. *)
type t =
  | Phase_begin of phase
  | Phase_end of phase
  | Syscall of {
      side : side;
      tid : int;               (** spawn index (dual-execution pairing key) *)
      sys : string;
      site : int;              (** static site id (PC) *)
      pos : string;            (** rendered {!Align.t} position *)
      ts : int;                (** cycles when servicing completed *)
      dur : int;               (** service cost in cycles *)
    }
  | Os_call of {
      side : side;
      pid : int;
      sys : string;
      clock : int;             (** the OS's private clock after the call *)
    }
  | Couple of {
      tid : int;
      pos : string;
      decision : decision;
      sink : bool;             (** the slave-side syscall is a sink *)
      master_sys : string option;
      slave_sys : string option;
      master_ts : int;         (** producing master cycle stamp; -1 if none *)
      slave_ts : int;          (** slave clock after the decision *)
    }
  | Divergence of {
      case : int;              (** 1, 2, 3, or 0 for final-state kinds *)
      kind : string;           (** [Engine.kind_to_string] *)
      sys : string;
      site : int;
      pos : string;
    }
  | Mutation of {
      sys : string;
      site : int;
      pos : string;
      before : string;
      after : string;
    }
  | Barrier_wait of {
      side : side;
      tid : int;
      loop : int;
      ts : int;
      dur : int;
    }
  | Cnt_sample of {
      side : side;
      value : int;             (** dynamic counter value at a syscall *)
    }
  | Run_summary of {
      side : side;
      cycles : int;
      steps : int;
      syscalls : int;
      cnt_instrs : int;        (** counter-maintenance instructions (Fig. 6) *)
      trap : string option;
    }
  | Fault_injected of {
      side : side;
      sys : string;
      site : int;
      action : string;         (** [Ldx_osim.Fault.action_to_string] *)
    }
  | Task_done of {
      label : string;          (** campaign task label *)
      status : string;
          (** ["ok"], ["crashed"], ["fuel-exhausted"], ["timed-out"] or
              ["quarantined"] *)
      attempts : int;          (** runs performed (1 = no retries) *)
      exn : string option;     (** the exception, for crashed tasks *)
    }
  | Schedule_decision of {
      side : side;
      index : int;             (** 0-based decision number *)
      chosen : int;            (** chosen thread, by spawn index *)
      runnable : int;          (** size of the choice set *)
      quantum : int;           (** steps granted *)
      ts : int;                (** cycles at the pick *)
    }
  | Preemption of {
      side : side;
      index : int;             (** the decision that preempted *)
      chosen : int;            (** the thread switched to *)
      ts : int;
    }
  | Campaign_plan of {
      mode : string;           (** ["sequential"] or ["parallel"] *)
      jobs : int;              (** effective worker domains *)
      tasks : int;
      est_steps : int;         (** per-task cost estimate (master steps) *)
    }
  | Checkpoint of {
      path : string;           (** journal file *)
      tasks : int;             (** tasks in the manifest *)
      journaled : int;         (** outcomes persisted at checkpoint *)
    }
  | Resume of {
      path : string;
      tasks : int;
      replayed : int;          (** outcomes replayed verbatim *)
      rerun : int;             (** tasks re-run (never journaled) *)
      torn : int;              (** torn-tail records dropped on load *)
    }
  | Quarantine of {
      label : string;          (** the parked task *)
      attempts : int;          (** every one of which crashed *)
      exn : string;            (** the final attempt's exception *)
    }
  | Task_begin of {
      label : string;
      index : int;             (** 0-based task index in the campaign *)
    }
  | Task_timing of {
      label : string;
      index : int;
      queue_us : int;
          (** wall-clock µs from fan-out start to the task's first
              attempt (nondeterministic — never rendered into traces
              or goldens) *)
      run_us : int;            (** wall-clock µs spent running attempts *)
      wall_cycles : int;
          (** deterministic virtual wall of the task's result, 0 when
              there is no result (crashed/quarantined) *)
    }
  | Campaign_progress of {
      completed : int;
      total : int;
      cycles_done : int;       (** Σ wall_cycles over completed tasks *)
      eta_cycles : int;
          (** estimated remaining virtual cycles (mean-based; at
              jobs>1 completion order makes this nondeterministic) *)
    }
  | Lease_claim of {
      index : int;             (** task index in the campaign manifest *)
      owner : string;          (** worker identity that won the claim *)
      epoch : int;             (** lease generation (0 = first claim) *)
      reclaimed : bool;        (** taken over from an expired lease *)
    }
  | Lease_expired of {
      index : int;
      owner : string;          (** the dead owner charged with the expiry *)
      epoch : int;             (** the epoch that expired *)
    }
  | Worker_event of {
      owner : string;
      kind : string;
          (** ["start"], ["drain"], ["complete"], ["spawned"],
              ["exited"], ["respawned"] or ["killed"] *)
    }
  | Snapshot_captured of {
      prefix_cycles : int;     (** slave clock at the decouple point *)
      prefix_steps : int;
      prefix_syscalls : int;   (** syscalls serviced in the shared prefix *)
    }
  | Snapshot_restored of {
      label : string;          (** task whose suffix ran from the snapshot *)
      prefix_cycles : int;     (** inherited from the snapshot *)
      suffix_cycles : int;     (** cycles the suffix added after restore *)
    }

(** Short human-readable rendering (debug sinks, logs). *)
val to_string : t -> string
