(* Minimal JSON construction (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s -> add_escaped b s
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         add_escaped b k;
         Buffer.add_char b ':';
         to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let quote s =
  let b = Buffer.create (String.length s + 2) in
  add_escaped b s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; RFC 8259 subset matching what
   [to_string] emits, plus exponents and unicode escapes). *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m ->
        raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n
          && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do advance () done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c', found '%c'" c c'
    | None -> fail "expected '%c', found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else begin
             (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "invalid \\u escape"
                in
                (* decode as UTF-8 (surrogates left as-is bytes) *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end;
                pos := !pos + 4
              | c -> fail "invalid escape '\\%c'" c);
             advance ();
             go ()
           end)
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "invalid number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character '%c'" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors for parsed trees. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
