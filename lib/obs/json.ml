(* Minimal JSON construction (no external dependency). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s -> add_escaped b s
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         add_escaped b k;
         Buffer.add_char b ':';
         to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let quote s =
  let b = Buffer.create (String.length s + 2) in
  add_escaped b s;
  Buffer.contents b
