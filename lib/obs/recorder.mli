(** The standard recording sink: keeps every event in emission order
    (for {!Chrome_trace}) and folds the stream into a {!Metrics.t} with
    a stable counter schema:

    - [syscalls.master] / [syscalls.slave] — dynamic syscalls serviced;
    - [os_calls.*] — OS-simulation dispatches (excludes thread ops);
    - [align.<decision>] — slave alignment decisions
      ({!Event.decision_to_string});
    - [engine.copies] — coupled outcomes the slave consumed;
    - [engine.sink_compares] — coupled sink-argument comparisons;
    - [engine.mutations] — source mutations that changed a value;
    - [divergence.case1/case2/case3] — sink reports by the paper's case
      number (these equal the run's [sink_report] tally);
    - [divergence.final-state] — final-state extension reports;
    - [barriers.*] — loop backedge barrier releases;
    - [faults.master] / [faults.slave] — injected environment faults per
      side, and [faults.<action>] per action kind (drop, short,
      transient, error, skew);
    - [failures.<side>.<class>] — trap taxonomy per side
      ({!Event.trap_class}: fuel, deadlock, os-error, vm-trap);
    - [campaign.<status>] — campaign task outcomes (ok, crashed,
      fuel-exhausted, timed-out, quarantined);
    - [retry.tasks] / [retry.attempts] — tasks that needed any retry,
      and total retries performed; [retry.quarantines] — tasks parked
      after crashing on every attempt;
    - [store.checkpoints] / [store.resumes] — journal checkpoints
      written and resumes performed, with [store.journaled] (outcomes
      persisted at the last checkpoint), [store.replayed] /
      [store.rerun] (resume work split) and [store.torn] (torn-tail
      records dropped on load);
    - [campaign.mode.<mode>] — execution mode the campaign chose
      (sequential, parallel), with [campaign.jobs] / [campaign.tasks]
      gauges;
    - [campaign.begun] — tasks started; [campaign.progress_events] —
      heartbeat events, with [campaign.completed] /
      [campaign.cycles_done] / [campaign.eta_cycles] gauges from the
      latest heartbeat (ETA in virtual cycles, mean-based);
    - [snap.captured] / [snap.restored] — decouple-point snapshots
      taken and suffixes resumed from them (the incremental-campaign
      path);
    - [sched.decisions.*] — scheduling decisions per side, and
      [sched.preemptions.*] — decisions that switched away from a
      still-runnable thread;
    - [master.cycles/steps/syscalls/cnt_instrs] and [slave.*] gauges
      from the run summaries, plus [run.wall_cycles] (max of the two
      clocks: the virtual two-CPU wall time).

    Histograms: [dyn_cnt.*] (dynamic counter value at each syscall,
    Table 1), [couple_lag] (slave clock minus producing master stamp
    at each copy — how far the slave trails the master),
    [sched.runnable.*] / [sched.quantum.*] (choice-set sizes and
    granted quanta per side), and per-task campaign telemetry:
    [campaign.queue_us] / [campaign.run_us] (wall-clock queue-wait vs
    run-time split — nondeterministic, never golden-pinned) and
    [campaign.wall_cycles] (deterministic virtual wall per task), and
    [snap.prefix_cycles] / [snap.suffix_cycles] (shared-prefix cost at
    capture, per-task suffix cost after restore). *)

type t

val create : unit -> t

val sink : t -> Sink.t

(** Events in emission order. *)
val events : t -> Event.t list

val event_count : t -> int

val metrics : t -> Metrics.t

val snapshot : t -> Metrics.snapshot
