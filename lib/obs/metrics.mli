(** Monotonic counters, gauges and log2 latency/size histograms.

    Names are dotted strings; the stable schema produced by
    {!Recorder} is documented in README.md "Observability".  A snapshot
    is an immutable, sorted view suitable for golden tests, JSON export
    and table rendering ({!Ldx_report.Obs_report}). *)

type t

val create : unit -> t

(** [incr t name] / [add t name k] bump a monotonic counter (created at
    0 on first use). *)
val incr : t -> string -> unit

val add : t -> string -> int -> unit

(** [set t name v] sets a gauge (last write wins; reported alongside
    counters). *)
val set : t -> string -> int -> unit

(** [observe t hist v] records a sample into histogram [hist]:
    count/sum/min/max plus log2 buckets ([v <= 0] lands in bucket 0,
    otherwise bucket [1 + floor(log2 v)]). *)
val observe : t -> string -> int -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;                  (** 0 when empty *)
  h_max : int;
  h_buckets : (int * int) list; (** (log2 bucket index, count), sorted *)
}

val hist_mean : hist_snapshot -> float

type snapshot = {
  counters : (string * int) list;   (** counters and gauges, name-sorted *)
  hists : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot

(** [counter snap name] is the counter's value, or 0 when absent. *)
val counter : snapshot -> string -> int

(** Inclusive value range covered by a log2 bucket: bucket 0 is
    [(min_int, 0)] (all non-positive samples); bucket [b >= 1] is
    [(2^(b-1), 2^b - 1)] — exactly the values whose bit length is [b].
    Pinned by a qcheck property in [test_obs.ml]. *)
val bucket_bounds : int -> int * int

(** [percentile h p] is the inclusive value range of the log2 bucket
    holding the p-th percentile sample (nearest-rank:
    [rank = ceil(p/100 * count)], clamped to [1, count]), tightened to
    the histogram's observed min/max.  The true percentile value is
    guaranteed to lie within the returned bounds (qcheck-pinned).
    [None] when the histogram is empty or [p] is outside [0, 100]. *)
val percentile : hist_snapshot -> float -> (int * int) option

val to_json : snapshot -> Json.t
