(** Monotonic counters, gauges and log2 latency/size histograms.

    Names are dotted strings; the stable schema produced by
    {!Recorder} is documented in README.md "Observability".  A snapshot
    is an immutable, sorted view suitable for golden tests, JSON export
    and table rendering ({!Ldx_report.Obs_report}). *)

type t

val create : unit -> t

(** [incr t name] / [add t name k] bump a monotonic counter (created at
    0 on first use). *)
val incr : t -> string -> unit

val add : t -> string -> int -> unit

(** [set t name v] sets a gauge (last write wins; reported alongside
    counters). *)
val set : t -> string -> int -> unit

(** [observe t hist v] records a sample into histogram [hist]:
    count/sum/min/max plus log2 buckets ([v <= 0] lands in bucket 0,
    otherwise bucket [1 + floor(log2 v)]). *)
val observe : t -> string -> int -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;                  (** 0 when empty *)
  h_max : int;
  h_buckets : (int * int) list; (** (log2 bucket index, count), sorted *)
}

val hist_mean : hist_snapshot -> float

type snapshot = {
  counters : (string * int) list;   (** counters and gauges, name-sorted *)
  hists : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot

(** [counter snap name] is the counter's value, or 0 when absent. *)
val counter : snapshot -> string -> int

val to_json : snapshot -> Json.t
