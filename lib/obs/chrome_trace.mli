(** Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

    Renders a recorded dual run as a visual Fig. 3 / Fig. 5: the master
    and slave executions appear as two process tracks (pid 1 and pid 2)
    on the shared virtual-cycle time axis, with one thread lane per
    spawn index; each serviced syscall is a complete ("X") slice, loop
    barrier waits are "barrier" slices, and every coupled syscall pair
    (copied or sink-match) is linked master-to-slave by a flow arrow
    ("s"/"f" pair) — the arrows make the slave's clock fast-forwarding
    past the producing master stamp directly visible.

    Engine-level happenings with no thread of their own — run phases
    (as "B"/"E" spans), divergence reports and source mutations (as
    instant events) — live on pid 0 ("engine"); their timestamps are
    the running maximum of all cycle stamps seen so far in the stream,
    which keeps the track monotone and properly nested.

    Each side additionally carries a "sched" lane (tid 999): one "X"
    slice per scheduling decision named after the chosen thread (with
    the granted quantum as its duration) and an instant per preemption
    — the schedule timeline the exploration mode perturbs.

    Incremental campaigns add a "snapshot" lane (tid 997): a capture
    instant at the decouple point and one slice per restored suffix
    whose duration is the suffix's cycle cost — the prefix/suffix
    split, visually.

    Campaign runs add a "journal" lane (tid 998) with
    checkpoint/resume/quarantine instants, and one lane per task
    (tid 1000+index, named after the task label): a begin instant plus
    a slice whose duration is the task's deterministic virtual wall,
    tasks laid end-to-end in task order.  Wall-clock telemetry
    ([Task_timing]'s queue/run split, [Campaign_progress]) is excluded,
    so campaign traces stay byte-identical at any [jobs].

    Timestamps are virtual cycles reported in the format's microsecond
    field; absolute values are the engine's cycle model, only ratios
    are meaningful. *)

(** Build the trace object from events in emission order. *)
val of_events : Event.t list -> Json.t

(** [to_string events = Json.to_string (of_events events)]. *)
val to_string : Event.t list -> string
