(* Counters, gauges and log2 histograms. *)

type hist = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : (int, int) Hashtbl.t;   (* log2 bucket index -> count *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 8 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let add t name k = cell t name := !(cell t name) + k
let incr t name = add t name 1
let set t name v = cell t name := v

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v) = bit length of v *)
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h =
        { count = 0; sum = 0; min_v = max_int; max_v = min_int;
          buckets = Hashtbl.create 8 }
      in
      Hashtbl.replace t.hists name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  Hashtbl.replace h.buckets b
    (1 + (try Hashtbl.find h.buckets b with Not_found -> 0))

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

let hist_mean h =
  if h.h_count = 0 then 0.0
  else float_of_int h.h_sum /. float_of_int h.h_count

type snapshot = {
  counters : (string * int) list;
  hists : (string * hist_snapshot) list;
}

let snapshot (t : t) =
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort compare
  in
  let hists =
    Hashtbl.fold
      (fun k h acc ->
         let buckets =
           Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.buckets []
           |> List.sort compare
         in
         ( k,
           { h_count = h.count;
             h_sum = h.sum;
             h_min = (if h.count = 0 then 0 else h.min_v);
             h_max = (if h.count = 0 then 0 else h.max_v);
             h_buckets = buckets } )
         :: acc)
      t.hists []
    |> List.sort compare
  in
  { counters; hists }

let counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let to_json snap =
  Json.Obj
    [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
                ( k,
                  Json.Obj
                    [ ("count", Json.Int h.h_count);
                      ("sum", Json.Int h.h_sum);
                      ("min", Json.Int h.h_min);
                      ("max", Json.Int h.h_max);
                      ("mean", Json.Float (hist_mean h));
                      ( "log2_buckets",
                        Json.Obj
                          (List.map
                             (fun (b, c) -> (string_of_int b, Json.Int c))
                             h.h_buckets) ) ] ))
             snap.hists) ) ]
