(* Counters, gauges and log2 histograms. *)

type hist = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : (int, int) Hashtbl.t;   (* log2 bucket index -> count *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 8 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let add t name k = cell t name := !(cell t name) + k
let incr t name = add t name 1
let set t name v = cell t name := v

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v) = bit length of v *)
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h =
        { count = 0; sum = 0; min_v = max_int; max_v = min_int;
          buckets = Hashtbl.create 8 }
      in
      Hashtbl.replace t.hists name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  Hashtbl.replace h.buckets b
    (1 + (try Hashtbl.find h.buckets b with Not_found -> 0))

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

let hist_mean h =
  if h.h_count = 0 then 0.0
  else float_of_int h.h_sum /. float_of_int h.h_count

type snapshot = {
  counters : (string * int) list;
  hists : (string * hist_snapshot) list;
}

let snapshot (t : t) =
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort compare
  in
  let hists =
    Hashtbl.fold
      (fun k h acc ->
         let buckets =
           Hashtbl.fold (fun b c acc -> (b, c) :: acc) h.buckets []
           |> List.sort compare
         in
         ( k,
           { h_count = h.count;
             h_sum = h.sum;
             h_min = (if h.count = 0 then 0 else h.min_v);
             h_max = (if h.count = 0 then 0 else h.max_v);
             h_buckets = buckets } )
         :: acc)
      t.hists []
    |> List.sort compare
  in
  { counters; hists }

let counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

(* Inclusive value range of a log2 bucket: bucket 0 holds all samples
   <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1] (b = bit length). *)
let bucket_bounds b =
  if b <= 0 then (min_int, 0) else (1 lsl (b - 1), (1 lsl b) - 1)

(* Rank-based percentile over the log2 buckets.  Returns the inclusive
   value bounds of the bucket holding the p-th percentile sample
   (nearest-rank: rank = ceil(p/100 * count), clamped to [1, count]),
   tightened to the histogram's observed [min, max].  [None] when the
   histogram is empty or [p] is outside [0, 100]. *)
let percentile (h : hist_snapshot) (p : float) : (int * int) option =
  if h.h_count = 0 || Float.is_nan p || p < 0.0 || p > 100.0 then None
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let rec walk acc = function
      | [] -> None
      | (b, c) :: rest ->
        if acc + c >= rank then begin
          let lo, hi = bucket_bounds b in
          Some (max lo h.h_min, min hi h.h_max)
        end
        else walk (acc + c) rest
    in
    walk 0 h.h_buckets
  end

let to_json snap =
  Json.Obj
    [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
                ( k,
                  Json.Obj
                    [ ("count", Json.Int h.h_count);
                      ("sum", Json.Int h.h_sum);
                      ("min", Json.Int h.h_min);
                      ("max", Json.Int h.h_max);
                      ("mean", Json.Float (hist_mean h));
                      ( "log2_buckets",
                        Json.Obj
                          (List.map
                             (fun (b, c) -> (string_of_int b, Json.Int c))
                             h.h_buckets) ) ] ))
             snap.hists) ) ]
