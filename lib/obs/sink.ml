type t = { emit : Event.t -> unit }

let noop = { emit = (fun _ -> ()) }
let of_fn f = { emit = f }
let tee sinks = { emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks) }
let emit t ev = t.emit ev
let emit_opt t ev = match t with None -> () | Some s -> s.emit ev
