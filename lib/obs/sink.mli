(** The sink interface: where observability events go.

    A sink is a single [emit] function.  Emitters hold a [t option] and
    guard every emission on it, so the disabled path costs one pointer
    comparison — observation must never perturb the experiment (the
    dual-execution engine's results are asserted byte-identical with and
    without a recording sink; see [test_obs.ml]). *)

type t = { emit : Event.t -> unit }

(** Discards everything. *)
val noop : t

val of_fn : (Event.t -> unit) -> t

(** Fan out to several sinks in order. *)
val tee : t list -> t

val emit : t -> Event.t -> unit

(** [emit_opt s ev] emits into [Some] sink and is a no-op on [None].
    Note: when building an event is itself costly, guard with a [match]
    at the call site instead so the payload is never constructed. *)
val emit_opt : t option -> Event.t -> unit
