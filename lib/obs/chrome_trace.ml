(* Chrome trace-event export.  See the interface for the track layout. *)

let pid_engine = 0
let pid_master = 1
let pid_slave = 2

(* A dedicated lane per side for the scheduler timeline: one slice per
   decision (which thread ran, for how many steps), instants for
   preemptions.  The tid is far above any spawn index so the lane sorts
   below the per-thread tracks. *)
let tid_sched = 999

(* Journal lane on the engine track: checkpoint/resume/quarantine
   instants of the campaign durability layer. *)
let tid_journal = 998

(* Snapshot lane on the engine track: a capture instant at the decouple
   point, then one slice per restored suffix (duration = suffix
   cycles), so the prefix/suffix split of an incremental campaign is
   directly visible. *)
let tid_snap = 997

(* Per-task campaign lanes on the engine track: task [i] gets lane
   [tid_task_base + i], carrying a begin instant and one slice whose
   duration is the task's deterministic virtual wall.  Tasks are laid
   end-to-end on their own clock (buffered sinks drain in task order,
   so the layout is byte-stable at any [jobs]). *)
let tid_task_base = 1000

let pid_of_side = function
  | Event.Master -> pid_master
  | Event.Slave -> pid_slave

let obj ~name ~cat ~ph ~ts ~pid ~tid extra =
  Json.Obj
    ([ ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid) ]
     @ extra)

let args fields = [ ("args", Json.Obj fields) ]

let of_events (events : Event.t list) : Json.t =
  let out = ref [] in
  let emit j = out := j :: !out in
  (* engine-track timestamps: running max of every stamp seen so far *)
  let now = ref 0 in
  let tick ts = if ts > !now then now := ts in
  (* lanes seen, for thread_name metadata *)
  let lanes : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let lane pid tid = Hashtbl.replace lanes (pid, tid) () in
  lane pid_engine 0;
  (* task-lane labels for thread_name metadata, and the end-to-end
     task clock *)
  let task_labels : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let task_clock = ref 0 in
  let flow_id = ref 0 in
  let summaries = ref [] in
  List.iter
    (fun (ev : Event.t) ->
       match ev with
       | Event.Phase_begin p ->
         emit
           (obj ~name:(Event.phase_to_string p) ~cat:"phase" ~ph:"B" ~ts:!now
              ~pid:pid_engine ~tid:0 [])
       | Event.Phase_end p ->
         emit
           (obj ~name:(Event.phase_to_string p) ~cat:"phase" ~ph:"E" ~ts:!now
              ~pid:pid_engine ~tid:0 [])
       | Event.Syscall { side; tid; sys; site; pos; ts; dur } ->
         tick ts;
         let pid = pid_of_side side in
         lane pid tid;
         emit
           (obj ~name:sys ~cat:"syscall" ~ph:"X" ~ts:(ts - dur) ~pid ~tid
              (("dur", Json.Int dur)
               :: args [ ("site", Json.Int site); ("pos", Json.Str pos) ]))
       | Event.Barrier_wait { side; tid; loop; ts; dur } ->
         tick ts;
         let pid = pid_of_side side in
         lane pid tid;
         emit
           (obj ~name:(Printf.sprintf "L%d" loop) ~cat:"barrier" ~ph:"X"
              ~ts:(ts - dur) ~pid ~tid
              (("dur", Json.Int dur) :: args [ ("loop", Json.Int loop) ]))
       | Event.Couple
           { tid; pos; decision; sink; master_sys; slave_sys; master_ts;
             slave_ts } ->
         tick slave_ts;
         if Event.decision_coupled decision && master_ts >= 0 then begin
           incr flow_id;
           let name = Option.value master_sys ~default:"couple" in
           lane pid_master tid;
           lane pid_slave tid;
           emit
             (obj ~name ~cat:"couple" ~ph:"s" ~ts:master_ts ~pid:pid_master
                ~tid
                (("id", Json.Int !flow_id)
                 :: args [ ("pos", Json.Str pos) ]));
           emit
             (obj ~name ~cat:"couple" ~ph:"f" ~ts:slave_ts ~pid:pid_slave ~tid
                (("id", Json.Int !flow_id)
                 :: ("bp", Json.Str "e")
                 :: args [ ("pos", Json.Str pos) ]))
         end
         else
           emit
             (obj
                ~name:(Event.decision_to_string decision)
                ~cat:"align" ~ph:"i" ~ts:slave_ts ~pid:pid_slave ~tid
                (("s", Json.Str "t")
                 :: args
                      [ ("pos", Json.Str pos);
                        ("sink", Json.Bool sink);
                        ( "master",
                          match master_sys with
                          | Some s -> Json.Str s
                          | None -> Json.Null );
                        ( "slave",
                          match slave_sys with
                          | Some s -> Json.Str s
                          | None -> Json.Null ) ]))
       | Event.Divergence { case; kind; sys; site; pos } ->
         emit
           (obj ~name:kind ~cat:"divergence" ~ph:"i" ~ts:!now ~pid:pid_engine
              ~tid:0
              (("s", Json.Str "p")
               :: args
                    [ ("case", Json.Int case);
                      ("sys", Json.Str sys);
                      ("site", Json.Int site);
                      ("pos", Json.Str pos) ]))
       | Event.Mutation { sys; site; pos; before; after } ->
         emit
           (obj ~name:("mutate " ^ sys) ~cat:"mutation" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:0
              (("s", Json.Str "p")
               :: args
                    [ ("site", Json.Int site);
                      ("pos", Json.Str pos);
                      ("before", Json.Str before);
                      ("after", Json.Str after) ]))
       | Event.Fault_injected { side; sys; site; action } ->
         emit
           (obj ~name:("fault " ^ sys) ~cat:"fault" ~ph:"i" ~ts:!now
              ~pid:(pid_of_side side) ~tid:0
              (("s", Json.Str "p")
               :: args
                    [ ("site", Json.Int site);
                      ("action", Json.Str action) ]))
       | Event.Task_done { label; status; attempts; exn } ->
         emit
           (obj ~name:("task " ^ label) ~cat:"campaign" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:0
              (("s", Json.Str "p")
               :: args
                    [ ("status", Json.Str status);
                      ("attempts", Json.Int attempts);
                      ( "exn",
                        match exn with
                        | Some e -> Json.Str e
                        | None -> Json.Null ) ]))
       | Event.Schedule_decision { side; index; chosen; runnable; quantum; ts }
         ->
         tick ts;
         let pid = pid_of_side side in
         lane pid tid_sched;
         emit
           (obj
              ~name:(Printf.sprintf "t%d" chosen)
              ~cat:"sched" ~ph:"X" ~ts ~pid ~tid:tid_sched
              (("dur", Json.Int quantum)
               :: args
                    [ ("index", Json.Int index);
                      ("runnable", Json.Int runnable);
                      ("quantum", Json.Int quantum) ]))
       | Event.Preemption { side; index; chosen; ts } ->
         tick ts;
         let pid = pid_of_side side in
         lane pid tid_sched;
         emit
           (obj
              ~name:(Printf.sprintf "preempt -> t%d" chosen)
              ~cat:"sched" ~ph:"i" ~ts ~pid ~tid:tid_sched
              (("s", Json.Str "t") :: args [ ("index", Json.Int index) ]))
       | Event.Campaign_plan { mode; jobs; tasks; est_steps } ->
         emit
           (obj ~name:("campaign " ^ mode) ~cat:"campaign" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:0
              (("s", Json.Str "p")
               :: args
                    [ ("jobs", Json.Int jobs);
                      ("tasks", Json.Int tasks);
                      ("est_steps", Json.Int est_steps) ]))
       | Event.Checkpoint { path; tasks; journaled } ->
         lane pid_engine tid_journal;
         emit
           (obj ~name:"checkpoint" ~cat:"journal" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t")
               :: args
                    [ ("path", Json.Str path);
                      ("tasks", Json.Int tasks);
                      ("journaled", Json.Int journaled) ]))
       | Event.Resume { path; tasks; replayed; rerun; torn } ->
         lane pid_engine tid_journal;
         emit
           (obj ~name:"resume" ~cat:"journal" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t")
               :: args
                    [ ("path", Json.Str path);
                      ("tasks", Json.Int tasks);
                      ("replayed", Json.Int replayed);
                      ("rerun", Json.Int rerun);
                      ("torn", Json.Int torn) ]))
       | Event.Quarantine { label; attempts; exn } ->
         lane pid_engine tid_journal;
         emit
           (obj ~name:("quarantine " ^ label) ~cat:"journal" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t")
               :: args
                    [ ("attempts", Json.Int attempts);
                      ("exn", Json.Str exn) ]))
       | Event.Task_begin { label; index } ->
         let tid = tid_task_base + index in
         lane pid_engine tid;
         Hashtbl.replace task_labels tid ("task " ^ label);
         emit
           (obj ~name:("begin " ^ label) ~cat:"campaign" ~ph:"i"
              ~ts:!task_clock ~pid:pid_engine ~tid
              (("s", Json.Str "t") :: args [ ("index", Json.Int index) ]))
       | Event.Task_timing { label; index; wall_cycles; _ } ->
         (* only the deterministic virtual wall is rendered; the
            wall-clock queue/run split stays out of the (golden-pinned)
            trace *)
         let tid = tid_task_base + index in
         lane pid_engine tid;
         Hashtbl.replace task_labels tid ("task " ^ label);
         emit
           (obj ~name:label ~cat:"campaign" ~ph:"X" ~ts:!task_clock
              ~pid:pid_engine ~tid
              (("dur", Json.Int wall_cycles)
               :: args
                    [ ("index", Json.Int index);
                      ("wall_cycles", Json.Int wall_cycles) ]));
         task_clock := !task_clock + wall_cycles
       (* Campaign_progress payloads are arrival-ordered and mean-based
          (nondeterministic at jobs>1) — excluded from traces *)
       | Event.Campaign_progress _ -> ()
       | Event.Lease_claim { index; owner; epoch; reclaimed } ->
         lane pid_engine tid_journal;
         emit
           (obj
              ~name:(Printf.sprintf "lease #%d e%d" index epoch)
              ~cat:"queue" ~ph:"i" ~ts:!now ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t")
               :: args
                    [ ("owner", Json.Str owner);
                      ("reclaimed", Json.Bool reclaimed) ]))
       | Event.Lease_expired { index; owner; epoch } ->
         lane pid_engine tid_journal;
         emit
           (obj
              ~name:(Printf.sprintf "lease-expired #%d e%d" index epoch)
              ~cat:"queue" ~ph:"i" ~ts:!now ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t") :: args [ ("owner", Json.Str owner) ]))
       | Event.Worker_event { owner; kind } ->
         lane pid_engine tid_journal;
         emit
           (obj ~name:("worker " ^ kind) ~cat:"service" ~ph:"i" ~ts:!now
              ~pid:pid_engine ~tid:tid_journal
              (("s", Json.Str "t") :: args [ ("owner", Json.Str owner) ]))
       | Event.Snapshot_captured { prefix_cycles; prefix_steps; prefix_syscalls }
         ->
         tick prefix_cycles;
         lane pid_engine tid_snap;
         emit
           (obj ~name:"capture" ~cat:"snap" ~ph:"i" ~ts:prefix_cycles
              ~pid:pid_engine ~tid:tid_snap
              (("s", Json.Str "t")
               :: args
                    [ ("prefix_cycles", Json.Int prefix_cycles);
                      ("prefix_steps", Json.Int prefix_steps);
                      ("prefix_syscalls", Json.Int prefix_syscalls) ]))
       | Event.Snapshot_restored { label; prefix_cycles; suffix_cycles } ->
         tick (prefix_cycles + suffix_cycles);
         lane pid_engine tid_snap;
         emit
           (obj ~name:("resume " ^ label) ~cat:"snap" ~ph:"X" ~ts:prefix_cycles
              ~pid:pid_engine ~tid:tid_snap
              (("dur", Json.Int suffix_cycles)
               :: args
                    [ ("prefix_cycles", Json.Int prefix_cycles);
                      ("suffix_cycles", Json.Int suffix_cycles) ]))
       | Event.Os_call _ | Event.Cnt_sample _ -> ()
       | Event.Run_summary { side; cycles; steps; syscalls; cnt_instrs; trap }
         ->
         tick cycles;
         summaries :=
           ( Event.side_to_string side,
             Json.Obj
               [ ("cycles", Json.Int cycles);
                 ("steps", Json.Int steps);
                 ("syscalls", Json.Int syscalls);
                 ("cnt_instrs", Json.Int cnt_instrs);
                 ( "trap",
                   match trap with Some m -> Json.Str m | None -> Json.Null )
               ] )
           :: !summaries)
    events;
  let meta =
    List.concat_map
      (fun (pid, name) ->
         [ Json.Obj
             [ ("name", Json.Str "process_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int pid);
               ("args", Json.Obj [ ("name", Json.Str name) ]) ] ])
      [ (pid_engine, "engine"); (pid_master, "master"); (pid_slave, "slave") ]
    @ (Hashtbl.fold (fun k () acc -> k :: acc) lanes []
       |> List.sort compare
       |> List.map (fun (pid, tid) ->
         Json.Obj
           [ ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int pid);
             ("tid", Json.Int tid);
             ( "args",
               Json.Obj
                 [ ( "name",
                     Json.Str
                       (if tid = tid_sched then "sched"
                        else if tid = tid_journal then "journal"
                        else if tid = tid_snap then "snapshot"
                        else
                          match Hashtbl.find_opt task_labels tid with
                          | Some l -> l
                          | None -> Printf.sprintf "thread %d" tid) ) ] ) ]))
  in
  Json.Obj
    [ ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj (List.rev !summaries));
      ("traceEvents", Json.Arr (meta @ List.rev !out)) ]

let to_string events = Json.to_string (of_events events)
