(** Minimal JSON construction — enough for the trace and metrics
    exporters without an external dependency.  Values are built as a
    tree and serialized compactly (no trailing spaces, stable field
    order = construction order). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Serialize compactly.  Strings are escaped per RFC 8259; floats are
    printed with [%.6g] ([Float nan] and infinities become [null]). *)
val to_string : t -> string

(** [to_buffer b v] appends the serialization of [v] to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** Escape and quote a string literal. *)
val quote : string -> string
