(** Minimal JSON construction — enough for the trace and metrics
    exporters without an external dependency.  Values are built as a
    tree and serialized compactly (no trailing spaces, stable field
    order = construction order). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Serialize compactly.  Strings are escaped per RFC 8259; floats are
    printed with [%.6g] ([Float nan] and infinities become [null]). *)
val to_string : t -> string

(** [to_buffer b v] appends the serialization of [v] to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** Escape and quote a string literal. *)
val quote : string -> string

(** Parse a JSON document (RFC 8259 subset: everything [to_string]
    emits, plus exponents and [\u] escapes decoded as UTF-8).  Numbers
    without fraction/exponent parse as [Int], others as [Float]. *)
val parse : string -> (t, string) result

(** {2 Accessors for parsed trees} *)

(** Field of an [Obj], [None] otherwise. *)
val member : string -> t -> t option

(** [Int], or an integral [Float]. *)
val to_int : t -> int option

(** Any number, as float. *)
val to_float : t -> float option

val to_str : t -> string option
